#include "sparse/prob_vector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/compensated_sum.h"
#include "util/string_util.h"

namespace ustdb {
namespace sparse {

ProbVector ProbVector::Zero(uint32_t size) { return ProbVector(size); }

ProbVector ProbVector::Delta(uint32_t size, uint32_t index) {
  assert(index < size);
  ProbVector v(size);
  v.idx_.push_back(index);
  v.val_.push_back(1.0);
  return v;
}

util::Result<ProbVector> ProbVector::FromPairs(
    uint32_t size, std::vector<std::pair<uint32_t, double>> pairs,
    bool normalize) {
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ProbVector v(size);
  for (const auto& [i, x] : pairs) {
    if (i >= size) {
      return util::Status::OutOfRange(
          util::StringPrintf("index %u outside vector of size %u", i, size));
    }
    if (x < 0.0 || !std::isfinite(x)) {
      return util::Status::InvalidArgument(
          util::StringPrintf("negative or non-finite probability %g at %u", x,
                             i));
    }
    if (x == 0.0) continue;
    if (!v.idx_.empty() && v.idx_.back() == i) {
      v.val_.back() += x;
    } else {
      v.idx_.push_back(i);
      v.val_.push_back(x);
    }
  }
  if (normalize) USTDB_RETURN_NOT_OK(v.Normalize());
  v.Compact();
  return v;
}

util::Result<ProbVector> ProbVector::FromDense(std::vector<double> values,
                                               bool normalize) {
  ProbVector v(static_cast<uint32_t>(values.size()));
  for (uint32_t i = 0; i < values.size(); ++i) {
    if (values[i] < 0.0 || !std::isfinite(values[i])) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "negative or non-finite probability %g at %u", values[i], i));
    }
  }
  v.dense_ = true;
  // Copy (not move) into the aligned dense buffer: every dense ProbVector
  // buffer must come from the kernel-aligned allocator.
  v.dense_values_.assign(values.begin(), values.end());
  if (normalize) USTDB_RETURN_NOT_OK(v.Normalize());
  v.Compact();
  return v;
}

util::Result<ProbVector> ProbVector::UniformOver(const IndexSet& support) {
  if (support.empty()) {
    return util::Status::InvalidArgument(
        "uniform distribution over empty support");
  }
  ProbVector v(support.domain_size());
  const double p = 1.0 / support.size();
  for (uint32_t i : support) {
    v.idx_.push_back(i);
    v.val_.push_back(p);
  }
  v.Compact();
  return v;
}

uint32_t ProbVector::Support() const {
  if (!dense_) return static_cast<uint32_t>(idx_.size());
  uint32_t n = 0;
  for (double x : dense_values_) n += (x != 0.0);
  return n;
}

double ProbVector::Get(uint32_t i) const {
  assert(i < size_);
  if (dense_) return dense_values_[i];
  auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
  if (it == idx_.end() || *it != i) return 0.0;
  return val_[static_cast<size_t>(it - idx_.begin())];
}

double ProbVector::Sum() const {
  util::CompensatedSum acc;
  if (dense_) {
    for (double x : dense_values_) acc.Add(x);
  } else {
    for (double x : val_) acc.Add(x);
  }
  return acc.Total();
}

double ProbVector::MaxValue() const {
  double m = 0.0;
  if (dense_) {
    for (double x : dense_values_) m = std::max(m, x);
  } else {
    for (double x : val_) m = std::max(m, x);
  }
  return m;
}

double ProbVector::MassIn(const IndexSet& set) const {
  util::CompensatedSum acc;
  if (dense_) {
    // Iterate the smaller side.
    if (set.size() < size_ / 2) {
      for (uint32_t i : set) acc.Add(dense_values_[i]);
    } else {
      for (uint32_t i = 0; i < size_; ++i) {
        if (set.Contains(i)) acc.Add(dense_values_[i]);
      }
    }
  } else {
    for (size_t k = 0; k < idx_.size(); ++k) {
      if (set.Contains(idx_[k])) acc.Add(val_[k]);
    }
  }
  return acc.Total();
}

double ProbVector::Dot(const ProbVector& other) const {
  assert(size_ == other.size_);
  util::CompensatedSum acc;
  // Iterate the sparser operand.
  const ProbVector* a = this;
  const ProbVector* b = &other;
  if (a->dense_ && !b->dense_) std::swap(a, b);
  a->ForEachNonZero([&](uint32_t i, double x) { acc.Add(x * b->Get(i)); });
  return acc.Total();
}

void ProbVector::Scale(double factor) {
  assert(factor >= 0.0);
  if (dense_) {
    for (double& x : dense_values_) x *= factor;
  } else {
    for (double& x : val_) x *= factor;
  }
}

util::Status ProbVector::Normalize() {
  const double s = Sum();
  if (s <= 0.0) {
    return util::Status::Inconsistent(
        "cannot normalize zero vector (observations are contradictory or "
        "distribution is empty)");
  }
  Scale(1.0 / s);
  return util::Status::OK();
}

double ProbVector::ExtractMassIn(const IndexSet& set) {
  util::CompensatedSum removed;
  if (dense_) {
    for (uint32_t i : set) {
      removed.Add(dense_values_[i]);
      dense_values_[i] = 0.0;
    }
  } else {
    size_t w = 0;
    for (size_t k = 0; k < idx_.size(); ++k) {
      if (set.Contains(idx_[k])) {
        removed.Add(val_[k]);
      } else {
        idx_[w] = idx_[k];
        val_[w] = val_[k];
        ++w;
      }
    }
    idx_.resize(w);
    val_.resize(w);
  }
  return removed.Total();
}

std::vector<std::pair<uint32_t, double>> ProbVector::ExtractEntriesIn(
    const IndexSet& set) {
  std::vector<std::pair<uint32_t, double>> out;
  if (dense_) {
    for (uint32_t i : set) {
      if (dense_values_[i] != 0.0) {
        out.emplace_back(i, dense_values_[i]);
        dense_values_[i] = 0.0;
      }
    }
  } else {
    size_t w = 0;
    for (size_t k = 0; k < idx_.size(); ++k) {
      if (set.Contains(idx_[k])) {
        out.emplace_back(idx_[k], val_[k]);
      } else {
        idx_[w] = idx_[k];
        val_[w] = val_[k];
        ++w;
      }
    }
    idx_.resize(w);
    val_.resize(w);
  }
  return out;
}

void ProbVector::AddEntries(
    const std::vector<std::pair<uint32_t, double>>& entries) {
  if (entries.empty()) return;
  if (dense_) {
    for (const auto& [i, x] : entries) {
      assert(i < size_ && x >= 0.0);
      dense_values_[i] += x;
    }
    return;
  }
  // Merge two sorted sequences (entries are ascending by construction of
  // ExtractEntriesIn; general callers may pass unsorted or duplicated —
  // sort and coalesce defensively, or the strictly-ascending index
  // invariant breaks).
  std::vector<std::pair<uint32_t, double>> add(entries);
  std::sort(add.begin(), add.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t coalesced = 0;
  for (size_t k = 1; k < add.size(); ++k) {
    if (add[k].first == add[coalesced].first) {
      add[coalesced].second += add[k].second;
    } else {
      add[++coalesced] = add[k];
    }
  }
  if (!add.empty()) add.resize(coalesced + 1);
  std::vector<uint32_t> new_idx;
  std::vector<double> new_val;
  new_idx.reserve(idx_.size() + add.size());
  new_val.reserve(idx_.size() + add.size());
  size_t a = 0;
  size_t b = 0;
  while (a < idx_.size() || b < add.size()) {
    if (b >= add.size() || (a < idx_.size() && idx_[a] < add[b].first)) {
      new_idx.push_back(idx_[a]);
      new_val.push_back(val_[a]);
      ++a;
    } else if (a >= idx_.size() || add[b].first < idx_[a]) {
      assert(add[b].first < size_ && add[b].second >= 0.0);
      if (add[b].second != 0.0) {
        new_idx.push_back(add[b].first);
        new_val.push_back(add[b].second);
      }
      ++b;
    } else {
      new_idx.push_back(idx_[a]);
      new_val.push_back(val_[a] + add[b].second);
      ++a;
      ++b;
    }
  }
  idx_ = std::move(new_idx);
  val_ = std::move(new_val);
  if (idx_.size() > kDenseThreshold * size_) SwitchToDense();
}

util::Status ProbVector::PointwiseMultiply(const ProbVector& other) {
  if (size_ != other.size_) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "dimension mismatch in pointwise multiply: %u vs %u", size_,
        other.size_));
  }
  if (dense_) {
    for (uint32_t i = 0; i < size_; ++i) dense_values_[i] *= other.Get(i);
  } else {
    for (size_t k = 0; k < idx_.size(); ++k) val_[k] *= other.Get(idx_[k]);
  }
  Compact();
  return util::Status::OK();
}

void ProbVector::CopyToDense(double* out) const {
  std::fill(out, out + size_, 0.0);
  ForEachNonZero([&](uint32_t i, double x) { out[i] = x; });
}

std::vector<double> ProbVector::ToDense() const {
  std::vector<double> out(size_, 0.0);
  CopyToDense(out.data());
  return out;
}

void ProbVector::SwitchToDense() {
  if (dense_) return;
  dense_values_.assign(size_, 0.0);
  assert(util::IsKernelAligned(dense_values_.data()));
  for (size_t k = 0; k < idx_.size(); ++k) dense_values_[idx_[k]] = val_[k];
  idx_.clear();
  idx_.shrink_to_fit();
  val_.clear();
  val_.shrink_to_fit();
  dense_ = true;
}

void ProbVector::SwitchToSparse() {
  if (!dense_) return;
  idx_.clear();
  val_.clear();
  for (uint32_t i = 0; i < size_; ++i) {
    if (dense_values_[i] != 0.0) {
      idx_.push_back(i);
      val_.push_back(dense_values_[i]);
    }
  }
  dense_values_.clear();
  dense_values_.shrink_to_fit();
  dense_ = false;
}

void ProbVector::Compact() {
  // Drop numerically-dead entries first.
  if (dense_) {
    uint32_t support = 0;
    for (double& x : dense_values_) {
      if (x != 0.0 && x < kProbEpsilon) x = 0.0;
      support += (x != 0.0);
    }
    if (support < kSparseThreshold * size_) SwitchToSparse();
  } else {
    size_t w = 0;
    for (size_t k = 0; k < idx_.size(); ++k) {
      if (val_[k] >= kProbEpsilon) {
        idx_[w] = idx_[k];
        val_[w] = val_[k];
        ++w;
      }
    }
    idx_.resize(w);
    val_.resize(w);
    if (idx_.size() > kDenseThreshold * size_) SwitchToDense();
  }
}

double ProbVector::MaxAbsDiff(const ProbVector& other) const {
  assert(size_ == other.size_);
  double m = 0.0;
  for (uint32_t i = 0; i < size_; ++i) {
    m = std::max(m, std::abs(Get(i) - other.Get(i)));
  }
  return m;
}

}  // namespace sparse
}  // namespace ustdb
