// Copyright 2026 the ustdb authors.
//
// CsrMatrix — compressed-sparse-row matrix of doubles, the representation of
// every (possibly augmented) Markov-chain transition matrix in ustdb. The
// paper reduces all query processing to row-vector × matrix products; the
// kernels here (VecMatWorkspace) are those products.

#ifndef USTDB_SPARSE_CSR_MATRIX_H_
#define USTDB_SPARSE_CSR_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/index_set.h"
#include "sparse/prob_vector.h"
#include "sparse/types.h"
#include "util/result.h"

namespace ustdb {
namespace sparse {

/// One structural non-zero: value at (row, col).
struct Triplet {
  uint32_t row;
  uint32_t col;
  double value;

  bool operator==(const Triplet&) const = default;
};

/// \brief Immutable CSR matrix.
///
/// Rows may be sub-stochastic (the augmented matrices M' of Section V-A drop
/// columns); use IsStochastic()/IsSubStochastic() to validate the variant a
/// caller requires.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  /// \brief Builds from triplets (any order; duplicates are summed).
  /// Fails on out-of-range coordinates or non-finite values. Zero-valued
  /// entries (including duplicate groups summing to zero) are dropped.
  static util::Result<CsrMatrix> FromTriplets(uint32_t rows, uint32_t cols,
                                              std::vector<Triplet> triplets);

  /// Identity matrix of dimension n.
  static CsrMatrix Identity(uint32_t n);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  NnzIndex nnz() const { return static_cast<NnzIndex>(col_idx_.size()); }

  /// Column indices of row i (ascending).
  std::span<const uint32_t> RowIndices(uint32_t i) const {
    return {col_idx_.data() + row_ptr_[i],
            col_idx_.data() + row_ptr_[i + 1]};
  }

  /// Values of row i, parallel to RowIndices(i).
  std::span<const double> RowValues(uint32_t i) const {
    return {values_.data() + row_ptr_[i], values_.data() + row_ptr_[i + 1]};
  }

  /// Number of structural non-zeros in row i.
  uint32_t RowNnz(uint32_t i) const {
    return static_cast<uint32_t>(row_ptr_[i + 1] - row_ptr_[i]);
  }

  /// Entry (i, j); O(log nnz(row i)).
  double Get(uint32_t i, uint32_t j) const;

  /// Sum of row i's values (compensated).
  double RowSum(uint32_t i) const;

  /// True iff every row sums to 1 within kStochasticTolerance and all
  /// values are non-negative.
  bool IsStochastic() const;

  /// True iff all values are >= 0 and every row sums to <= 1 + tolerance.
  bool IsSubStochastic() const;

  /// Transposed copy (used once per chain to enable backward/QB passes).
  CsrMatrix Transposed() const;

  /// Dense snapshot (tests only; O(rows*cols) memory).
  std::vector<std::vector<double>> ToDense() const;

  /// All structural non-zeros as triplets (row-major order).
  std::vector<Triplet> ToTriplets() const;

  /// \brief Matrix–matrix product this × other (small models / tests;
  /// Chapman–Kolmogorov M^m). Fails on dimension mismatch.
  util::Result<CsrMatrix> Multiply(const CsrMatrix& other) const;

  /// m-th power; m == 0 yields the identity.
  util::Result<CsrMatrix> Power(uint32_t m) const;

  /// \brief Copy with the columns in `cols` zeroed out — the paper's M'
  /// construction ("replacing all columns that correspond to states in S□
  /// by zero vectors").
  CsrMatrix WithColumnsZeroed(const IndexSet& cols) const;

  /// \brief Per-row sum of the entries living in columns `cols` — the
  /// paper's sum(S□) column vector accompanying M'.
  std::vector<double> RowMassInColumns(const IndexSet& cols) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

  bool operator==(const CsrMatrix& other) const = default;

 private:
  uint32_t rows_;
  uint32_t cols_;
  std::vector<NnzIndex> row_ptr_;   // size rows_ + 1
  std::vector<uint32_t> col_idx_;   // ascending within each row
  std::vector<double> values_;
};

/// \brief Reusable workspace for row-vector × CsrMatrix products.
///
/// Holds a dense scratch accumulator plus a stamp array so repeated products
/// against the same-width matrices cost O(work) rather than O(cols) to reset.
/// Not thread-safe; create one per thread.
class VecMatWorkspace {
 public:
  VecMatWorkspace() = default;

  /// \brief out = x · m. `out` may alias x. Dimension of x must equal
  /// m.rows(); the result has dimension m.cols(). The representation of
  /// `out` (sparse vs dense) is chosen from the result's support.
  void Multiply(const ProbVector& x, const CsrMatrix& m, ProbVector* out);

 private:
  void EnsureWidth(uint32_t cols);

  std::vector<double> scratch_;
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> touched_;
  uint32_t epoch_ = 0;
};

}  // namespace sparse
}  // namespace ustdb

#endif  // USTDB_SPARSE_CSR_MATRIX_H_
