// Copyright 2026 the ustdb authors.
//
// CsrMatrix — compressed-sparse-row matrix of doubles, the representation of
// every (possibly augmented) Markov-chain transition matrix in ustdb. The
// paper reduces all query processing to row-vector × matrix products; the
// kernels here (VecMatWorkspace) are those products.

#ifndef USTDB_SPARSE_CSR_MATRIX_H_
#define USTDB_SPARSE_CSR_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/index_set.h"
#include "sparse/prob_vector.h"
#include "sparse/types.h"
#include "util/aligned_alloc.h"
#include "util/result.h"

namespace ustdb {
namespace sparse {

/// One structural non-zero: value at (row, col).
struct Triplet {
  uint32_t row;
  uint32_t col;
  double value;

  bool operator==(const Triplet&) const = default;
};

/// \brief Immutable CSR matrix.
///
/// Rows may be sub-stochastic (the augmented matrices M' of Section V-A drop
/// columns); use IsStochastic()/IsSubStochastic() to validate the variant a
/// caller requires.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  /// \brief Builds from triplets (any order; duplicates are summed).
  /// Fails on out-of-range coordinates or non-finite values. Zero-valued
  /// entries (including duplicate groups summing to zero) are dropped.
  static util::Result<CsrMatrix> FromTriplets(uint32_t rows, uint32_t cols,
                                              std::vector<Triplet> triplets);

  /// Identity matrix of dimension n.
  static CsrMatrix Identity(uint32_t n);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  NnzIndex nnz() const { return static_cast<NnzIndex>(col_idx_.size()); }

  /// Column indices of row i (ascending).
  std::span<const uint32_t> RowIndices(uint32_t i) const {
    return {col_idx_.data() + row_ptr_[i],
            col_idx_.data() + row_ptr_[i + 1]};
  }

  /// Values of row i, parallel to RowIndices(i).
  std::span<const double> RowValues(uint32_t i) const {
    return {values_.data() + row_ptr_[i], values_.data() + row_ptr_[i + 1]};
  }

  /// Number of structural non-zeros in row i.
  uint32_t RowNnz(uint32_t i) const {
    return static_cast<uint32_t>(row_ptr_[i + 1] - row_ptr_[i]);
  }

  /// Entry (i, j); O(log nnz(row i)).
  double Get(uint32_t i, uint32_t j) const;

  /// Sum of row i's values (compensated).
  double RowSum(uint32_t i) const;

  /// True iff every row sums to 1 within kStochasticTolerance and all
  /// values are non-negative.
  bool IsStochastic() const;

  /// True iff all values are >= 0 and every row sums to <= 1 + tolerance.
  bool IsSubStochastic() const;

  /// Transposed copy (used once per chain to enable backward/QB passes).
  CsrMatrix Transposed() const;

  /// Dense snapshot (tests only; O(rows*cols) memory).
  std::vector<std::vector<double>> ToDense() const;

  /// All structural non-zeros as triplets (row-major order).
  std::vector<Triplet> ToTriplets() const;

  /// \brief Matrix–matrix product this × other (small models / tests;
  /// Chapman–Kolmogorov M^m). Fails on dimension mismatch.
  util::Result<CsrMatrix> Multiply(const CsrMatrix& other) const;

  /// m-th power; m == 0 yields the identity.
  util::Result<CsrMatrix> Power(uint32_t m) const;

  /// \brief Copy with the columns in `cols` zeroed out — the paper's M'
  /// construction ("replacing all columns that correspond to states in S□
  /// by zero vectors").
  CsrMatrix WithColumnsZeroed(const IndexSet& cols) const;

  /// \brief Per-row sum of the entries living in columns `cols` — the
  /// paper's sum(S□) column vector accompanying M'.
  std::vector<double> RowMassInColumns(const IndexSet& cols) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

  /// \brief Builds the cache-line-blocked row layout the gather kernel
  /// streams: a padded copy of (col_idx_, values_) whose rows start
  /// 64-byte aligned and are padded to a multiple of 8 entries with
  /// zero-valued entries, so the vector gather never runs a scalar tail.
  /// Padding columns ascend past the row's last column where the domain
  /// allows (preserving the contiguous-row fast path on banded models),
  /// else descend below the row's first column, else repeat column 0 —
  /// never repeating an interior column, so the kernel's unsigned-diff
  /// contiguity tests stay exact; either way a padding entry contributes
  /// exactly +0.0. Idempotent; called automatically by Transposed() and
  /// by MarkovChain construction. Purely an acceleration structure — it
  /// never affects results, equality, or serialization.
  void BuildGatherBlocks();

  /// True once BuildGatherBlocks() has run on this matrix.
  bool has_gather_blocks() const { return !gb_row_ptr_.empty(); }

  /// \brief Logical equality: same shape and same structural non-zeros.
  /// The gather-block acceleration arrays are deliberately ignored — a
  /// matrix compares equal to its blocked copy.
  bool operator==(const CsrMatrix& other) const;

 private:
  friend class VecMatWorkspace;  // kernels walk the raw CSR arrays

  uint32_t rows_;
  uint32_t cols_;
  std::vector<NnzIndex> row_ptr_;           // size rows_ + 1
  util::AlignedVector<uint32_t> col_idx_;   // ascending within each row
  util::AlignedVector<double> values_;
  // Blocked gather layout (BuildGatherBlocks); empty until built.
  std::vector<NnzIndex> gb_row_ptr_;        // size rows_ + 1 when built
  util::AlignedVector<uint32_t> gb_col_idx_;
  util::AlignedVector<double> gb_values_;
};

/// \brief Reusable workspace for row-vector × CsrMatrix products.
///
/// Two regime-specialized kernels sit behind every product (the paper's
/// Section VIII observation: distribution vectors start with ~5-state
/// support and densify within a few transitions, so one fixed kernel is
/// wrong in one of the two regimes):
///
///   * sparse regime (support below ProbVector::kDenseThreshold of the
///     input dimension): the classic stamp/touched-list scatter that costs
///     O(work) instead of O(cols),
///   * dense regime: a contiguous accumulator with a branch-free scatter
///     inner loop (no stamps, no touched bookkeeping), upgraded to a fully
///     sequential *gather* over the transposed matrix whenever the caller
///     can supply it (engines hold memoized transposes per chain).
///
/// All regimes accumulate each output column in ascending input-row
/// order, so the scatter kernels reproduce the legacy results bit for
/// bit; the gather kernel's unrolled reduction regroups additions and may
/// differ in the last ulp (kernel parity is tested to 1e-12, not
/// bit-equality, for this reason). The fused variants fold the engines'
/// hit-mass accumulation and ◆-redirection sweeps into the product's
/// materialization pass, so one transition costs one pass over the data
/// instead of a product followed by a second full sweep.
///
/// Not thread-safe; create one per thread.
class VecMatWorkspace {
 public:
  VecMatWorkspace() = default;

  /// \brief out = x · m. `out` may alias x. Dimension of x must equal
  /// m.rows(); the result has dimension m.cols(). The representation of
  /// `out` (sparse vs dense) is chosen from the result's support with
  /// hysteresis against the previous representation of `*out`.
  /// \param m_transposed optional mᵀ; when supplied and x is dense the
  /// product runs as a sequential gather (the fastest regime). Passing a
  /// matrix that is not exactly mᵀ is undefined.
  void Multiply(const ProbVector& x, const CsrMatrix& m, ProbVector* out,
                const CsrMatrix* m_transposed = nullptr);

  /// \brief The pre-overhaul single-path kernel (stamp bookkeeping in
  /// every regime, no fusion, no hysteresis), kept verbatim as the parity
  /// reference for kernel tests and the baseline for bench_spmv_kernels.
  void MultiplyLegacy(const ProbVector& x, const CsrMatrix& m,
                      ProbVector* out);

  /// \brief Fused out = x · m and mass measurement: returns the product's
  /// mass inside `set` without removing it. Equivalent to Multiply
  /// followed by out->MassIn(set), in one pass.
  double MultiplyAndMassIn(const ProbVector& x, const CsrMatrix& m,
                           const IndexSet& set, ProbVector* out,
                           const CsrMatrix* m_transposed = nullptr);

  /// \brief Fused out = x · m and ◆-redirection: entries of the product
  /// inside `set` are dropped and their total (compensated) mass returned.
  /// Equivalent to Multiply followed by out->ExtractMassIn(set), in one
  /// pass — the second full sweep of the engines' transition loops is
  /// gone.
  double MultiplyAndExtract(const ProbVector& x, const CsrMatrix& m,
                            const IndexSet& set, ProbVector* out,
                            const CsrMatrix* m_transposed = nullptr);

  /// \brief MultiplyAndExtract that also hands the removed entries to the
  /// caller as (index, value) pairs — the PSTkQ / doubled-space flavour
  /// where extracted mass moves to the same state one level up instead of
  /// into a single ◆ state. `extracted` is cleared first; pairs may be
  /// unsorted (ProbVector::AddEntries sorts defensively). Returns the
  /// extracted mass.
  double MultiplyAndExtractEntries(
      const ProbVector& x, const CsrMatrix& m, const IndexSet& set,
      ProbVector* out, std::vector<std::pair<uint32_t, double>>* extracted,
      const CsrMatrix* m_transposed = nullptr);

  /// \brief out = x' · m where x' is x with every entry in `ones` replaced
  /// by exactly 1.0 — the query-based backward step's region clamp fused
  /// into the product, avoiding the extract/re-insert sweep that
  /// previously materialized x'. Unlike the kernels above this changes
  /// the accumulation order of the clamped entries, so results may differ
  /// from the unfused sequence by O(1e-16) roundoff per step.
  void MultiplyClamped(const ProbVector& x, const CsrMatrix& m,
                       const IndexSet& ones, ProbVector* out,
                       const CsrMatrix* m_transposed = nullptr);

 private:
  /// What the materialization pass does with entries inside the set.
  enum class SetAction { kNone, kMassIn, kExtract, kExtractEntries };

  void EnsureWidth(uint32_t cols);

  /// Accumulates x·m into scratch_. Returns true when the dense regime ran
  /// (scratch_[0..cols) valid); false for the sparse regime (touched_
  /// holds the live columns, unsorted). `clamp_ones` != nullptr applies
  /// the MultiplyClamped input substitution.
  bool Accumulate(const ProbVector& x, const CsrMatrix& m,
                  const CsrMatrix* m_transposed, const IndexSet* clamp_ones);

  /// Builds the result vector from scratch_, applying kProbEpsilon
  /// filtering, the set action (a template parameter so the no-set fast
  /// path carries zero per-entry overhead), and representation
  /// hysteresis; returns the (compensated) mass of the entries inside
  /// `set`.
  template <SetAction kAction>
  double Materialize(uint32_t cols, bool dense_regime, const IndexSet* set,
                     ProbVector* out,
                     std::vector<std::pair<uint32_t, double>>* entries);

  util::AlignedVector<double> scratch_;
  util::AlignedVector<double> clamp_scratch_;  // dense clamped-input copy
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> touched_;
  uint32_t epoch_ = 0;
};

}  // namespace sparse
}  // namespace ustdb

#endif  // USTDB_SPARSE_CSR_MATRIX_H_
