// Copyright 2026 the ustdb authors.
//
// ProbVector — a probability (sub-)distribution over [0, size) that
// automatically switches between a sorted sparse representation and a dense
// array. This mirrors the behaviour the paper observes in Section VIII:
// object distribution vectors start with tiny support ("object spread" ~ 5
// states) and densify with every transition, so a fixed representation is
// either wasteful early or slow late.

#ifndef USTDB_SPARSE_PROB_VECTOR_H_
#define USTDB_SPARSE_PROB_VECTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "sparse/index_set.h"
#include "sparse/types.h"
#include "util/aligned_alloc.h"
#include "util/result.h"

namespace ustdb {
namespace sparse {

/// \brief Adaptive sparse/dense vector of non-negative reals.
///
/// Invariants: entries are >= 0; sparse indices are strictly ascending with
/// values > 0. Total mass may be <= 1 (sub-distributions appear when the
/// absorbing ◆ state's mass is tracked separately).
class ProbVector {
 public:
  /// Support fraction above which the vector migrates to dense storage.
  static constexpr double kDenseThreshold = 0.30;

  /// Support fraction below which a dense vector migrates back to sparse
  /// storage. Strictly below kDenseThreshold: inside the band between the
  /// two thresholds a vector keeps its current representation, so support
  /// hovering at one boundary (common once a distribution saturates its
  /// reachable set) stops flipping representations every transition.
  static constexpr double kSparseThreshold = 0.15;

  /// Zero vector of dimension `size`.
  static ProbVector Zero(uint32_t size);

  /// Point mass at `index` (a certain observation).
  static ProbVector Delta(uint32_t size, uint32_t index);

  /// \brief Builds from (index, value) pairs. Duplicate indices are summed.
  /// Fails on out-of-range indices or negative values.
  /// \param normalize if true, scales the result to total mass one
  ///        (fails if the total is zero).
  static util::Result<ProbVector> FromPairs(
      uint32_t size, std::vector<std::pair<uint32_t, double>> pairs,
      bool normalize = false);

  /// Builds from a dense array (size must match); negative values rejected.
  static util::Result<ProbVector> FromDense(std::vector<double> values,
                                            bool normalize = false);

  /// Uniform distribution over the members of `support`.
  static util::Result<ProbVector> UniformOver(const IndexSet& support);

  ProbVector() : size_(0), dense_(false) {}

  uint32_t size() const { return size_; }

  /// Number of structurally non-zero entries.
  uint32_t Support() const;

  /// True while the sparse representation is active.
  bool IsSparse() const { return !dense_; }

  /// Value at `i` (O(log support) when sparse).
  double Get(uint32_t i) const;

  /// Total mass (compensated summation).
  double Sum() const;

  /// Largest entry value (0 for an all-zero vector).
  double MaxValue() const;

  /// Mass inside `set`: sum_{i in set} v[i].
  double MassIn(const IndexSet& set) const;

  /// Dot product with another vector of the same dimension.
  double Dot(const ProbVector& other) const;

  /// Scales all entries by `factor` (>= 0).
  void Scale(double factor);

  /// Scales to total mass one. Fails if the vector is all zero.
  util::Status Normalize();

  /// \brief Removes the mass inside `set` and returns the removed amount.
  /// This is the vector-level view of the paper's M+ redirection: entries in
  /// the query region are folded into the absorbing state by the caller.
  double ExtractMassIn(const IndexSet& set);

  /// \brief Removes the entries inside `set` and returns them as
  /// (index, value) pairs (ascending). The per-entry flavour of
  /// ExtractMassIn, needed by the PSTkQ shift step where mass moves to the
  /// *same state* one k-level up rather than into a single ◆ state.
  std::vector<std::pair<uint32_t, double>> ExtractEntriesIn(
      const IndexSet& set);

  /// Adds `value` to entry `index` for each pair (values must be >= 0).
  void AddEntries(const std::vector<std::pair<uint32_t, double>>& entries);

  /// \brief Elementwise (Hadamard) product with `other`, in place.
  /// Implements Lemma 1's combination of independent observations (the
  /// normalization step is separate; see Normalize()).
  util::Status PointwiseMultiply(const ProbVector& other);

  /// Copies into a dense array of length size() (caller-owned).
  void CopyToDense(double* out) const;

  /// Dense snapshot (for tests / ground-truth comparisons).
  std::vector<double> ToDense() const;

  /// Calls f(index, value) for every structural non-zero, ascending index.
  template <typename F>
  void ForEachNonZero(F&& f) const {
    if (dense_) {
      for (uint32_t i = 0; i < size_; ++i) {
        if (dense_values_[i] != 0.0) f(i, dense_values_[i]);
      }
    } else {
      for (size_t k = 0; k < idx_.size(); ++k) f(idx_[k], val_[k]);
    }
  }

  /// \brief Re-evaluates the representation choice: drops entries below
  /// kProbEpsilon and switches sparse<->dense with hysteresis (dense above
  /// kDenseThreshold, sparse below kSparseThreshold, unchanged between).
  void Compact();

  /// L-infinity distance to `other` (test helper).
  double MaxAbsDiff(const ProbVector& other) const;

 private:
  friend class VecMatWorkspace;

  explicit ProbVector(uint32_t size) : size_(size), dense_(false) {}

  void SwitchToDense();
  void SwitchToSparse();

  uint32_t size_;
  bool dense_;
  // Sparse representation (ascending, values > 0):
  std::vector<uint32_t> idx_;
  std::vector<double> val_;
  // Dense representation — 64-byte-aligned so the SIMD kernels can read
  // and ping-pong it directly (see util/aligned_alloc.h):
  util::AlignedVector<double> dense_values_;
};

}  // namespace sparse
}  // namespace ustdb

#endif  // USTDB_SPARSE_PROB_VECTOR_H_
