#include "sparse/csr_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/compensated_sum.h"
#include "util/string_util.h"

namespace ustdb {
namespace sparse {

util::Result<CsrMatrix> CsrMatrix::FromTriplets(uint32_t rows, uint32_t cols,
                                                std::vector<Triplet> t) {
  for (const Triplet& e : t) {
    if (e.row >= rows || e.col >= cols) {
      return util::Status::OutOfRange(util::StringPrintf(
          "triplet (%u,%u) outside %ux%u matrix", e.row, e.col, rows, cols));
    }
    if (!std::isfinite(e.value)) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "non-finite value at (%u,%u)", e.row, e.col));
    }
  }
  std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(t.size());
  m.values_.reserve(t.size());

  size_t k = 0;
  for (uint32_t r = 0; r < rows; ++r) {
    while (k < t.size() && t[k].row == r) {
      // Merge duplicates at (r, c).
      uint32_t c = t[k].col;
      double v = 0.0;
      while (k < t.size() && t[k].row == r && t[k].col == c) {
        v += t[k].value;
        ++k;
      }
      if (v != 0.0) {
        m.col_idx_.push_back(c);
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[r + 1] = static_cast<NnzIndex>(m.col_idx_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::Identity(uint32_t n) {
  CsrMatrix m;
  m.rows_ = n;
  m.cols_ = n;
  m.row_ptr_.resize(n + 1);
  m.col_idx_.resize(n);
  m.values_.assign(n, 1.0);
  for (uint32_t i = 0; i < n; ++i) {
    m.row_ptr_[i] = i;
    m.col_idx_[i] = i;
  }
  m.row_ptr_[n] = n;
  return m;
}

double CsrMatrix::Get(uint32_t i, uint32_t j) const {
  assert(i < rows_ && j < cols_);
  auto idx = RowIndices(i);
  auto it = std::lower_bound(idx.begin(), idx.end(), j);
  if (it == idx.end() || *it != j) return 0.0;
  return values_[row_ptr_[i] + static_cast<NnzIndex>(it - idx.begin())];
}

double CsrMatrix::RowSum(uint32_t i) const {
  util::CompensatedSum acc;
  for (double v : RowValues(i)) acc.Add(v);
  return acc.Total();
}

bool CsrMatrix::IsStochastic() const {
  if (rows_ != cols_) return false;
  for (double v : values_) {
    if (v < 0.0) return false;
  }
  for (uint32_t i = 0; i < rows_; ++i) {
    if (std::abs(RowSum(i) - 1.0) > kStochasticTolerance) return false;
  }
  return true;
}

bool CsrMatrix::IsSubStochastic() const {
  for (double v : values_) {
    if (v < 0.0) return false;
  }
  for (uint32_t i = 0; i < rows_; ++i) {
    if (RowSum(i) > 1.0 + kStochasticTolerance) return false;
  }
  return true;
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(col_idx_.size());
  t.values_.resize(values_.size());

  // Counting sort by column.
  for (uint32_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (uint32_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];

  std::vector<NnzIndex> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (uint32_t r = 0; r < rows_; ++r) {
    for (NnzIndex k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const uint32_t c = col_idx_[k];
      const NnzIndex pos = cursor[c]++;
      t.col_idx_[pos] = r;
      t.values_[pos] = values_[k];
    }
  }
  return t;
}

std::vector<std::vector<double>> CsrMatrix::ToDense() const {
  std::vector<std::vector<double>> d(rows_, std::vector<double>(cols_, 0.0));
  for (uint32_t r = 0; r < rows_; ++r) {
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) d[r][idx[k]] = val[k];
  }
  return d;
}

std::vector<Triplet> CsrMatrix::ToTriplets() const {
  std::vector<Triplet> out;
  out.reserve(col_idx_.size());
  for (uint32_t r = 0; r < rows_; ++r) {
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      out.push_back({r, idx[k], val[k]});
    }
  }
  return out;
}

util::Result<CsrMatrix> CsrMatrix::Multiply(const CsrMatrix& other) const {
  if (cols_ != other.rows_) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "matrix product dimension mismatch: %ux%u times %ux%u", rows_, cols_,
        other.rows_, other.cols_));
  }
  std::vector<Triplet> out;
  std::vector<double> scratch(other.cols_, 0.0);
  std::vector<uint32_t> touched;
  for (uint32_t r = 0; r < rows_; ++r) {
    touched.clear();
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      const uint32_t mid = idx[k];
      const double x = val[k];
      auto oidx = other.RowIndices(mid);
      auto oval = other.RowValues(mid);
      for (size_t j = 0; j < oidx.size(); ++j) {
        if (scratch[oidx[j]] == 0.0) touched.push_back(oidx[j]);
        scratch[oidx[j]] += x * oval[j];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (uint32_t c : touched) {
      if (scratch[c] != 0.0) out.push_back({r, c, scratch[c]});
      scratch[c] = 0.0;
    }
  }
  return FromTriplets(rows_, other.cols_, std::move(out));
}

util::Result<CsrMatrix> CsrMatrix::Power(uint32_t m) const {
  if (rows_ != cols_) {
    return util::Status::InvalidArgument("matrix power requires square matrix");
  }
  CsrMatrix result = Identity(rows_);
  CsrMatrix base = *this;
  // Exponentiation by squaring.
  while (m > 0) {
    if (m & 1u) {
      USTDB_ASSIGN_OR_RETURN(result, result.Multiply(base));
    }
    m >>= 1u;
    if (m > 0) {
      USTDB_ASSIGN_OR_RETURN(base, base.Multiply(base));
    }
  }
  return result;
}

CsrMatrix CsrMatrix::WithColumnsZeroed(const IndexSet& cols) const {
  CsrMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);
  m.col_idx_.reserve(col_idx_.size());
  m.values_.reserve(values_.size());
  for (uint32_t r = 0; r < rows_; ++r) {
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      if (!cols.Contains(idx[k])) {
        m.col_idx_.push_back(idx[k]);
        m.values_.push_back(val[k]);
      }
    }
    m.row_ptr_[r + 1] = static_cast<NnzIndex>(m.col_idx_.size());
  }
  return m;
}

std::vector<double> CsrMatrix::RowMassInColumns(const IndexSet& cols) const {
  std::vector<double> out(rows_, 0.0);
  for (uint32_t r = 0; r < rows_; ++r) {
    util::CompensatedSum acc;
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      if (cols.Contains(idx[k])) acc.Add(val[k]);
    }
    out[r] = acc.Total();
  }
  return out;
}

size_t CsrMatrix::MemoryBytes() const {
  return row_ptr_.capacity() * sizeof(NnzIndex) +
         col_idx_.capacity() * sizeof(uint32_t) +
         values_.capacity() * sizeof(double);
}

void VecMatWorkspace::EnsureWidth(uint32_t cols) {
  if (scratch_.size() < cols) {
    scratch_.resize(cols, 0.0);
    stamp_.resize(cols, 0);
  }
}

void VecMatWorkspace::Multiply(const ProbVector& x, const CsrMatrix& m,
                               ProbVector* out) {
  assert(x.size() == m.rows());
  EnsureWidth(m.cols());
  ++epoch_;
  if (epoch_ == 0) {
    // Stamp wrap-around: invalidate everything once per 2^32 products.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  touched_.clear();

  x.ForEachNonZero([&](uint32_t i, double xi) {
    auto idx = m.RowIndices(i);
    auto val = m.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      const uint32_t c = idx[k];
      if (stamp_[c] != epoch_) {
        stamp_[c] = epoch_;
        scratch_[c] = 0.0;
        touched_.push_back(c);
      }
      scratch_[c] += xi * val[k];
    }
  });

  // Materialize with representation chosen by support density.
  ProbVector result(m.cols());
  if (touched_.size() > ProbVector::kDenseThreshold * m.cols()) {
    result.dense_ = true;
    result.dense_values_.assign(m.cols(), 0.0);
    for (uint32_t c : touched_) {
      if (scratch_[c] > kProbEpsilon) result.dense_values_[c] = scratch_[c];
    }
  } else {
    std::sort(touched_.begin(), touched_.end());
    result.idx_.reserve(touched_.size());
    result.val_.reserve(touched_.size());
    for (uint32_t c : touched_) {
      if (scratch_[c] > kProbEpsilon) {
        result.idx_.push_back(c);
        result.val_.push_back(scratch_[c]);
      }
    }
  }
  *out = std::move(result);
}

}  // namespace sparse
}  // namespace ustdb
