#include "sparse/csr_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kernels/isa.h"
#include "obs/metrics.h"
#include "util/compensated_sum.h"
#include "util/string_util.h"

namespace ustdb {
namespace sparse {

namespace {

/// Counts dense-regime SpMV passes per active ISA in the global metrics
/// registry. Handles resolve once (function-local statics); the hot path
/// pays one striped relaxed add per pass — noise next to the O(nnz) kernel
/// work being counted, and paid identically by both sides of any ISA
/// perf comparison.
obs::Counter* SpmvPassCounter(kernels::Isa isa) {
  static obs::Counter* const baseline =
      obs::MetricsRegistry::Global()->GetCounter(
          "ustdb_kernel_spmv_passes_total", {{"isa", "baseline"}},
          "Dense-regime SpMV passes dispatched through the kernel table",
          "passes");
  static obs::Counter* const avx2 = obs::MetricsRegistry::Global()->GetCounter(
      "ustdb_kernel_spmv_passes_total", {{"isa", "avx2"}},
      "Dense-regime SpMV passes dispatched through the kernel table",
      "passes");
  return isa == kernels::Isa::kAvx2 ? avx2 : baseline;
}

}  // namespace

util::Result<CsrMatrix> CsrMatrix::FromTriplets(uint32_t rows, uint32_t cols,
                                                std::vector<Triplet> t) {
  for (const Triplet& e : t) {
    if (e.row >= rows || e.col >= cols) {
      return util::Status::OutOfRange(util::StringPrintf(
          "triplet (%u,%u) outside %ux%u matrix", e.row, e.col, rows, cols));
    }
    if (!std::isfinite(e.value)) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "non-finite value at (%u,%u)", e.row, e.col));
    }
  }
  std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(t.size());
  m.values_.reserve(t.size());

  size_t k = 0;
  for (uint32_t r = 0; r < rows; ++r) {
    while (k < t.size() && t[k].row == r) {
      // Merge duplicates at (r, c).
      uint32_t c = t[k].col;
      double v = 0.0;
      while (k < t.size() && t[k].row == r && t[k].col == c) {
        v += t[k].value;
        ++k;
      }
      if (v != 0.0) {
        m.col_idx_.push_back(c);
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[r + 1] = static_cast<NnzIndex>(m.col_idx_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::Identity(uint32_t n) {
  CsrMatrix m;
  m.rows_ = n;
  m.cols_ = n;
  m.row_ptr_.resize(n + 1);
  m.col_idx_.resize(n);
  m.values_.assign(n, 1.0);
  for (uint32_t i = 0; i < n; ++i) {
    m.row_ptr_[i] = i;
    m.col_idx_[i] = i;
  }
  m.row_ptr_[n] = n;
  return m;
}

double CsrMatrix::Get(uint32_t i, uint32_t j) const {
  assert(i < rows_ && j < cols_);
  auto idx = RowIndices(i);
  auto it = std::lower_bound(idx.begin(), idx.end(), j);
  if (it == idx.end() || *it != j) return 0.0;
  return values_[row_ptr_[i] + static_cast<NnzIndex>(it - idx.begin())];
}

double CsrMatrix::RowSum(uint32_t i) const {
  util::CompensatedSum acc;
  for (double v : RowValues(i)) acc.Add(v);
  return acc.Total();
}

bool CsrMatrix::IsStochastic() const {
  if (rows_ != cols_) return false;
  for (double v : values_) {
    if (v < 0.0) return false;
  }
  for (uint32_t i = 0; i < rows_; ++i) {
    if (std::abs(RowSum(i) - 1.0) > kStochasticTolerance) return false;
  }
  return true;
}

bool CsrMatrix::IsSubStochastic() const {
  for (double v : values_) {
    if (v < 0.0) return false;
  }
  for (uint32_t i = 0; i < rows_; ++i) {
    if (RowSum(i) > 1.0 + kStochasticTolerance) return false;
  }
  return true;
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(col_idx_.size());
  t.values_.resize(values_.size());

  // Counting sort by column.
  for (uint32_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (uint32_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];

  std::vector<NnzIndex> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (uint32_t r = 0; r < rows_; ++r) {
    for (NnzIndex k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const uint32_t c = col_idx_[k];
      const NnzIndex pos = cursor[c]++;
      t.col_idx_[pos] = r;
      t.values_[pos] = values_[k];
    }
  }
  // Transposes exist to feed the gather kernel (engines memoize one per
  // chain), so hand them the blocked layout the kernel streams fastest.
  t.BuildGatherBlocks();
  return t;
}

void CsrMatrix::BuildGatherBlocks() {
  if (has_gather_blocks()) return;
  gb_row_ptr_.assign(rows_ + 1, 0);
  for (uint32_t r = 0; r < rows_; ++r) {
    const NnzIndex len = row_ptr_[r + 1] - row_ptr_[r];
    // Rows padded to a multiple of 8 entries: with the 64-byte-aligned
    // base below, every row's values start on a cache-line boundary and
    // the vector gather never needs a scalar tail.
    gb_row_ptr_[r + 1] = gb_row_ptr_[r] + ((len + 7) & ~NnzIndex{7});
  }
  const NnzIndex total = gb_row_ptr_[rows_];
  gb_col_idx_.assign(total, 0);
  gb_values_.assign(total, 0.0);
  assert(util::IsKernelAligned(gb_values_.data()));
  assert(util::IsKernelAligned(gb_col_idx_.data()));
  for (uint32_t r = 0; r < rows_; ++r) {
    const NnzIndex src = row_ptr_[r];
    const NnzIndex len = row_ptr_[r + 1] - src;
    const NnzIndex dst = gb_row_ptr_[r];
    std::copy(col_idx_.begin() + static_cast<ptrdiff_t>(src),
              col_idx_.begin() + static_cast<ptrdiff_t>(src + len),
              gb_col_idx_.begin() + static_cast<ptrdiff_t>(dst));
    std::copy(values_.begin() + static_cast<ptrdiff_t>(src),
              values_.begin() + static_cast<ptrdiff_t>(src + len),
              gb_values_.begin() + static_cast<ptrdiff_t>(dst));
    const NnzIndex padded = gb_row_ptr_[r + 1] - dst;
    // Padding entries carry value 0.0, so any in-range column is sound
    // (they add exactly +0.0). Column choice still matters: the gather
    // kernel detects contiguous runs by first/last index differences,
    // which is exact only while a row stays strictly ascending. So pads
    // continue the ascending run while the domain allows (a contiguous
    // row stays contiguous and keeps the dense-dot fast path); once the
    // run hits the top edge they descend below the row's first column
    // instead — the descent makes every unsigned difference test in the
    // kernel fail, never fake a run. A row already covering all columns
    // repeats column 0, which is equally undetectable as contiguous.
    uint32_t up = len > 0 ? col_idx_[src + len - 1] : 0;
    uint32_t down = len > 0 ? col_idx_[src] : 1;  // first pad is down - 1
    for (NnzIndex k = len; k < padded; ++k) {
      uint32_t pad_col = 0;
      if (up + 1 < cols_) {
        pad_col = ++up;
      } else if (down > 0) {
        pad_col = --down;
      }
      gb_col_idx_[dst + k] = pad_col;
    }
  }
}

bool CsrMatrix::operator==(const CsrMatrix& other) const {
  // Logical contents only; the gather-block acceleration arrays are a
  // layout detail (a transposed matrix must compare equal to the same
  // matrix assembled from triplets, which carries no blocks).
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
         values_ == other.values_;
}

std::vector<std::vector<double>> CsrMatrix::ToDense() const {
  std::vector<std::vector<double>> d(rows_, std::vector<double>(cols_, 0.0));
  for (uint32_t r = 0; r < rows_; ++r) {
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) d[r][idx[k]] = val[k];
  }
  return d;
}

std::vector<Triplet> CsrMatrix::ToTriplets() const {
  std::vector<Triplet> out;
  out.reserve(col_idx_.size());
  for (uint32_t r = 0; r < rows_; ++r) {
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      out.push_back({r, idx[k], val[k]});
    }
  }
  return out;
}

util::Result<CsrMatrix> CsrMatrix::Multiply(const CsrMatrix& other) const {
  if (cols_ != other.rows_) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "matrix product dimension mismatch: %ux%u times %ux%u", rows_, cols_,
        other.rows_, other.cols_));
  }
  std::vector<Triplet> out;
  std::vector<double> scratch(other.cols_, 0.0);
  std::vector<uint32_t> touched;
  for (uint32_t r = 0; r < rows_; ++r) {
    touched.clear();
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      const uint32_t mid = idx[k];
      const double x = val[k];
      auto oidx = other.RowIndices(mid);
      auto oval = other.RowValues(mid);
      for (size_t j = 0; j < oidx.size(); ++j) {
        if (scratch[oidx[j]] == 0.0) touched.push_back(oidx[j]);
        scratch[oidx[j]] += x * oval[j];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (uint32_t c : touched) {
      if (scratch[c] != 0.0) out.push_back({r, c, scratch[c]});
      scratch[c] = 0.0;
    }
  }
  return FromTriplets(rows_, other.cols_, std::move(out));
}

util::Result<CsrMatrix> CsrMatrix::Power(uint32_t m) const {
  if (rows_ != cols_) {
    return util::Status::InvalidArgument("matrix power requires square matrix");
  }
  CsrMatrix result = Identity(rows_);
  CsrMatrix base = *this;
  // Exponentiation by squaring.
  while (m > 0) {
    if (m & 1u) {
      USTDB_ASSIGN_OR_RETURN(result, result.Multiply(base));
    }
    m >>= 1u;
    if (m > 0) {
      USTDB_ASSIGN_OR_RETURN(base, base.Multiply(base));
    }
  }
  return result;
}

CsrMatrix CsrMatrix::WithColumnsZeroed(const IndexSet& cols) const {
  CsrMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);
  m.col_idx_.reserve(col_idx_.size());
  m.values_.reserve(values_.size());
  for (uint32_t r = 0; r < rows_; ++r) {
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      if (!cols.Contains(idx[k])) {
        m.col_idx_.push_back(idx[k]);
        m.values_.push_back(val[k]);
      }
    }
    m.row_ptr_[r + 1] = static_cast<NnzIndex>(m.col_idx_.size());
  }
  return m;
}

std::vector<double> CsrMatrix::RowMassInColumns(const IndexSet& cols) const {
  std::vector<double> out(rows_, 0.0);
  for (uint32_t r = 0; r < rows_; ++r) {
    util::CompensatedSum acc;
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      if (cols.Contains(idx[k])) acc.Add(val[k]);
    }
    out[r] = acc.Total();
  }
  return out;
}

size_t CsrMatrix::MemoryBytes() const {
  return row_ptr_.capacity() * sizeof(NnzIndex) +
         col_idx_.capacity() * sizeof(uint32_t) +
         values_.capacity() * sizeof(double) +
         gb_row_ptr_.capacity() * sizeof(NnzIndex) +
         gb_col_idx_.capacity() * sizeof(uint32_t) +
         gb_values_.capacity() * sizeof(double);
}

void VecMatWorkspace::EnsureWidth(uint32_t cols) {
  // Checked independently: Materialize's dense path donates scratch_ to
  // the result and adopts the output's previous buffer, so the two arrays
  // can drift apart in size between calls.
  if (scratch_.size() < cols) scratch_.resize(cols, 0.0);
  if (stamp_.size() < cols) stamp_.resize(cols, 0);
}

void VecMatWorkspace::MultiplyLegacy(const ProbVector& x, const CsrMatrix& m,
                                     ProbVector* out) {
  assert(x.size() == m.rows());
  EnsureWidth(m.cols());
  ++epoch_;
  if (epoch_ == 0) {
    // Stamp wrap-around: invalidate everything once per 2^32 products.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  touched_.clear();

  x.ForEachNonZero([&](uint32_t i, double xi) {
    auto idx = m.RowIndices(i);
    auto val = m.RowValues(i);
    for (size_t k = 0; k < idx.size(); ++k) {
      const uint32_t c = idx[k];
      if (stamp_[c] != epoch_) {
        stamp_[c] = epoch_;
        scratch_[c] = 0.0;
        touched_.push_back(c);
      }
      scratch_[c] += xi * val[k];
    }
  });

  // Materialize with representation chosen by support density.
  ProbVector result(m.cols());
  if (touched_.size() > ProbVector::kDenseThreshold * m.cols()) {
    result.dense_ = true;
    result.dense_values_.assign(m.cols(), 0.0);
    for (uint32_t c : touched_) {
      if (scratch_[c] > kProbEpsilon) result.dense_values_[c] = scratch_[c];
    }
  } else {
    std::sort(touched_.begin(), touched_.end());
    result.idx_.reserve(touched_.size());
    result.val_.reserve(touched_.size());
    for (uint32_t c : touched_) {
      if (scratch_[c] > kProbEpsilon) {
        result.idx_.push_back(c);
        result.val_.push_back(scratch_[c]);
      }
    }
  }
  *out = std::move(result);
}

bool VecMatWorkspace::Accumulate(const ProbVector& x, const CsrMatrix& m,
                                 const CsrMatrix* m_transposed,
                                 const IndexSet* clamp_ones) {
  assert(x.size() == m.rows());
  assert(m_transposed == nullptr || (m_transposed->rows() == m.cols() &&
                                     m_transposed->cols() == m.rows()));
  assert(clamp_ones == nullptr || clamp_ones->domain_size() == m.rows());
  EnsureWidth(m.cols());

  const uint32_t rows = m.rows();
  const uint32_t cols = m.cols();
  // A dense-representation x always takes the dense kernels (iterating it
  // costs O(rows) either way); a sparse x is promoted once its support —
  // plus any clamped entries, which contribute whether or not x stores
  // them — crosses the dense threshold. Support() is O(1) for sparse x.
  bool dense_regime = !x.IsSparse();
  if (!dense_regime) {
    const uint64_t effective_support =
        clamp_ones == nullptr
            ? x.Support()
            : std::min<uint64_t>(
                  rows, uint64_t{x.Support()} + clamp_ones->size());
    dense_regime = effective_support > ProbVector::kDenseThreshold * rows;
  }

  if (!dense_regime) {
    // Sparse regime: stamp/touched scatter, O(touched work).
    ++epoch_;
    if (epoch_ == 0) {
      // Stamp wrap-around: invalidate everything once per 2^32 products.
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
    touched_.clear();
    const auto scatter_row = [&](uint32_t i, double xi) {
      auto idx = m.RowIndices(i);
      auto val = m.RowValues(i);
      for (size_t k = 0; k < idx.size(); ++k) {
        const uint32_t c = idx[k];
        if (stamp_[c] != epoch_) {
          stamp_[c] = epoch_;
          scratch_[c] = 0.0;
          touched_.push_back(c);
        }
        scratch_[c] += xi * val[k];
      }
    };
    if (clamp_ones == nullptr) {
      x.ForEachNonZero(scatter_row);
    } else {
      x.ForEachNonZero([&](uint32_t i, double xi) {
        if (!clamp_ones->Contains(i)) scatter_row(i, xi);
      });
      for (uint32_t i : *clamp_ones) scatter_row(i, 1.0);
    }
    return false;
  }

  // Dense regime: everything below runs through the ISA-dispatched kernel
  // table (kernels/isa.h) — one relaxed atomic load per product, then
  // direct calls into whichever variant (scalar baseline or AVX2/FMA) the
  // dispatcher selected at startup.
  const kernels::KernelTable& kt = kernels::Active();
  SpmvPassCounter(kernels::ActiveIsa())->Add(1);
  assert(util::IsKernelAligned(scratch_.data()));

  // When x stores a dense array the kernels read it through `xv`; a clamp
  // substitutes a clamped copy once (O(rows)) so the inner loops stay
  // branch-free instead of paying a bitmap test per non-zero.
  const double* xv = nullptr;
  if (!x.IsSparse()) {
    xv = x.dense_values_.data();
    if (clamp_ones != nullptr) {
      clamp_scratch_.assign(x.dense_values_.begin(), x.dense_values_.end());
      for (uint32_t i : *clamp_ones) clamp_scratch_[i] = 1.0;
      xv = clamp_scratch_.data();
    }
    assert(util::IsKernelAligned(xv));
  }

  // Gather over the transposed matrix when available: fully sequential
  // reads/writes, no scratch reset, no per-entry bookkeeping of any kind.
  // Prefers the cache-line-blocked row layout when the transpose carries
  // one (Transposed() builds it) — padded rows mean the kernel never runs
  // a scalar tail. The gather's reduction may regroup, so kernels are
  // parity-tested to 1e-12, not bit-equality.
  if (m_transposed != nullptr && xv != nullptr) {
    const CsrMatrix& mt = *m_transposed;
    if (mt.has_gather_blocks()) {
      kt.gather(mt.gb_row_ptr_.data(), mt.gb_col_idx_.data(),
                mt.gb_values_.data(), xv, cols, scratch_.data());
    } else {
      kt.gather(mt.row_ptr_.data(), mt.col_idx_.data(), mt.values_.data(),
                xv, cols, scratch_.data());
    }
    return true;
  }

  // Dense scatter: contiguous accumulator, branch-free inner loop over
  // the raw CSR arrays. Scatter kernels are bit-identical across ISAs.
  std::fill(scratch_.begin(), scratch_.begin() + cols, 0.0);
  const NnzIndex* rp = m.row_ptr_.data();
  const uint32_t* ci = m.col_idx_.data();
  const double* va = m.values_.data();
  if (xv != nullptr) {
    kt.scatter_dense(rp, ci, va, xv, rows, scratch_.data());
  } else if (clamp_ones == nullptr) {
    x.ForEachNonZero([&](uint32_t i, double xi) {
      kt.scatter_row(ci, va, rp[i], rp[i + 1], xi, scratch_.data());
    });
  } else {
    x.ForEachNonZero([&](uint32_t i, double xi) {
      if (!clamp_ones->Contains(i)) {
        kt.scatter_row(ci, va, rp[i], rp[i + 1], xi, scratch_.data());
      }
    });
    for (uint32_t i : *clamp_ones) {
      kt.scatter_row(ci, va, rp[i], rp[i + 1], 1.0, scratch_.data());
    }
  }
  return true;
}

template <VecMatWorkspace::SetAction kAction>
double VecMatWorkspace::Materialize(
    uint32_t cols, bool dense_regime, const IndexSet* set, ProbVector* out,
    std::vector<std::pair<uint32_t, double>>* entries) {
  constexpr bool kHasSet = kAction != SetAction::kNone;
  constexpr bool kExtracting = kAction == SetAction::kExtract ||
                               kAction == SetAction::kExtractEntries;
  assert(kHasSet == (set != nullptr));
  assert(set == nullptr || set->domain_size() == cols);
  util::CompensatedSum in_set;
  if (entries != nullptr) entries->clear();

  // Hysteresis: inside the [kSparseThreshold, kDenseThreshold] support
  // band the result keeps the previous representation of *out, so vectors
  // hovering at one boundary stop oscillating every transition. The
  // support estimate feeding the decision differs by regime — the dense
  // branch counts post-filter survivors (it has them for free), the
  // sparse branch uses the pre-filter touched count so, like the legacy
  // kernel, it can pick the destination before writing anything. Both
  // estimates only steer representation, never values.
  const bool prev_dense = !out->IsSparse() && out->size() == cols;

  ProbVector result(cols);

  // Classifies one surviving entry; returns true when it is stored. The
  // whole classification folds away at compile time for kNone callers.
  const auto keep_entry = [&](uint32_t c, double v) -> bool {
    if constexpr (kHasSet) {
      if (set->Contains(c)) {
        in_set.Add(v);
        if constexpr (kExtracting) {
          if constexpr (kAction == SetAction::kExtractEntries) {
            entries->emplace_back(c, v);
          }
          return false;
        }
      }
    }
    return true;
  };

  if (dense_regime) {
    // One ascending in-place pass over the contiguous accumulator: filter
    // and classify entries where they already are, then *move* the
    // accumulator into the result and recycle the output's previous
    // buffer as the next product's accumulator — the steady dense loop
    // (v ← v·M) ping-pongs two buffers and never copies a value twice.
    uint32_t stored = 0;
    if constexpr (!kHasSet) {
      // No set action: the filter is a pure compare-and-zero sweep, which
      // the dispatched kernel runs 4 lanes at a time.
      stored = kernels::Active().filter_positive(scratch_.data(), cols,
                                                 kProbEpsilon);
    } else {
      // Set actions interleave CompensatedSum updates (order-dependent)
      // and extraction bookkeeping with the filter; they stay scalar.
      for (uint32_t c = 0; c < cols; ++c) {
        const double v = scratch_[c];
        if (!(v > kProbEpsilon)) {
          scratch_[c] = 0.0;
          continue;
        }
        if (keep_entry(c, v)) {
          ++stored;
        } else {
          scratch_[c] = 0.0;
        }
      }
    }
    const bool to_sparse =
        stored < ProbVector::kSparseThreshold * cols ||
        (!prev_dense && stored <= ProbVector::kDenseThreshold * cols);
    if (to_sparse) {
      result.idx_.reserve(stored);
      result.val_.reserve(stored);
      for (uint32_t c = 0; c < cols; ++c) {
        if (scratch_[c] != 0.0) {
          result.idx_.push_back(c);
          result.val_.push_back(scratch_[c]);
        }
      }
    } else {
      // The ping-pong swap keeps both buffers on the aligned allocator:
      // the result adopts the accumulator and the workspace adopts the
      // output's previous (aligned) dense buffer, so no later kernel can
      // ever see a misaligned head.
      util::AlignedVector<double> recycled;
      if (!out->IsSparse()) recycled = std::move(out->dense_values_);
      result.dense_ = true;
      result.dense_values_ = std::move(scratch_);
      result.dense_values_.resize(cols);  // trim if the workspace is wider
      scratch_ = std::move(recycled);     // EnsureWidth re-grows if needed
      assert(util::IsKernelAligned(result.dense_values_.data()));
    }
  } else {
    const size_t candidates = touched_.size();
    const bool to_dense =
        candidates > ProbVector::kDenseThreshold * cols ||
        (prev_dense && candidates >= ProbVector::kSparseThreshold * cols);
    if (to_dense) {
      // Insertion-order writes into the dense array (no sort), exactly
      // like the legacy kernel's dense materialization.
      result.dense_ = true;
      result.dense_values_.assign(cols, 0.0);
      for (uint32_t c : touched_) {
        const double v = scratch_[c];
        if (!(v > kProbEpsilon)) continue;
        if (keep_entry(c, v)) result.dense_values_[c] = v;
      }
    } else {
      std::sort(touched_.begin(), touched_.end());
      result.idx_.reserve(candidates);
      result.val_.reserve(candidates);
      for (uint32_t c : touched_) {
        const double v = scratch_[c];
        if (!(v > kProbEpsilon)) continue;
        if (keep_entry(c, v)) {
          result.idx_.push_back(c);
          result.val_.push_back(v);
        }
      }
    }
  }
  *out = std::move(result);
  return in_set.Total();
}

void VecMatWorkspace::Multiply(const ProbVector& x, const CsrMatrix& m,
                               ProbVector* out,
                               const CsrMatrix* m_transposed) {
  const bool dense = Accumulate(x, m, m_transposed, nullptr);
  Materialize<SetAction::kNone>(m.cols(), dense, nullptr, out, nullptr);
}

double VecMatWorkspace::MultiplyAndMassIn(const ProbVector& x,
                                          const CsrMatrix& m,
                                          const IndexSet& set,
                                          ProbVector* out,
                                          const CsrMatrix* m_transposed) {
  const bool dense = Accumulate(x, m, m_transposed, nullptr);
  return Materialize<SetAction::kMassIn>(m.cols(), dense, &set, out,
                                         nullptr);
}

double VecMatWorkspace::MultiplyAndExtract(const ProbVector& x,
                                           const CsrMatrix& m,
                                           const IndexSet& set,
                                           ProbVector* out,
                                           const CsrMatrix* m_transposed) {
  const bool dense = Accumulate(x, m, m_transposed, nullptr);
  return Materialize<SetAction::kExtract>(m.cols(), dense, &set, out,
                                          nullptr);
}

double VecMatWorkspace::MultiplyAndExtractEntries(
    const ProbVector& x, const CsrMatrix& m, const IndexSet& set,
    ProbVector* out, std::vector<std::pair<uint32_t, double>>* extracted,
    const CsrMatrix* m_transposed) {
  const bool dense = Accumulate(x, m, m_transposed, nullptr);
  return Materialize<SetAction::kExtractEntries>(m.cols(), dense, &set, out,
                                                 extracted);
}

void VecMatWorkspace::MultiplyClamped(const ProbVector& x, const CsrMatrix& m,
                                      const IndexSet& ones, ProbVector* out,
                                      const CsrMatrix* m_transposed) {
  const bool dense = Accumulate(x, m, m_transposed, &ones);
  Materialize<SetAction::kNone>(m.cols(), dense, nullptr, out, nullptr);
}

}  // namespace sparse
}  // namespace ustdb
