// Copyright 2026 the ustdb authors.
//
// IndexSet — an immutable set of indices over a fixed domain [0, n), with a
// sorted-vector representation for iteration plus a bitmap for O(1)
// membership tests. Query regions S□ (sets of states) and time sets T□ are
// both represented with IndexSet.

#ifndef USTDB_SPARSE_INDEX_SET_H_
#define USTDB_SPARSE_INDEX_SET_H_

#include <cstdint>
#include <vector>

#include "sparse/types.h"
#include "util/result.h"

namespace ustdb {
namespace sparse {

/// \brief Immutable subset of [0, domain_size).
///
/// The paper's query regions are "a set of (not necessarily connected)
/// locations in space" and "a set of (not necessarily subsequent) points in
/// time"; IndexSet supports both without assuming contiguity.
class IndexSet {
 public:
  /// Empty set over an empty domain.
  IndexSet() : domain_size_(0) {}

  /// \brief Builds a set from arbitrary (possibly unsorted, possibly
  /// duplicated) indices. Fails if any index is >= domain_size.
  static util::Result<IndexSet> FromIndices(uint32_t domain_size,
                                            std::vector<uint32_t> indices);

  /// \brief Contiguous inclusive range [lo, hi] (the paper's query windows,
  /// e.g. states [100,120], times [20,25]). Fails if hi >= domain_size or
  /// lo > hi.
  static util::Result<IndexSet> FromRange(uint32_t domain_size, uint32_t lo,
                                          uint32_t hi);

  /// The empty set over [0, domain_size).
  static IndexSet Empty(uint32_t domain_size);

  /// The full set [0, domain_size).
  static IndexSet All(uint32_t domain_size);

  /// O(1) membership test.
  bool Contains(uint32_t i) const {
    return i < domain_size_ && bitmap_[i] != 0;
  }

  /// Set complement within the domain (used by PST∀Q: S \ S□).
  IndexSet Complement() const;

  /// Number of elements.
  uint32_t size() const { return static_cast<uint32_t>(sorted_.size()); }
  bool empty() const { return sorted_.empty(); }
  uint32_t domain_size() const { return domain_size_; }

  /// Sorted ascending elements.
  const std::vector<uint32_t>& elements() const { return sorted_; }
  std::vector<uint32_t>::const_iterator begin() const {
    return sorted_.begin();
  }
  std::vector<uint32_t>::const_iterator end() const { return sorted_.end(); }

  /// Smallest / largest element; set must be non-empty.
  uint32_t min() const { return sorted_.front(); }
  uint32_t max() const { return sorted_.back(); }

  bool operator==(const IndexSet& other) const {
    return domain_size_ == other.domain_size_ && sorted_ == other.sorted_;
  }

 private:
  IndexSet(uint32_t domain_size, std::vector<uint32_t> sorted);

  uint32_t domain_size_;
  std::vector<uint32_t> sorted_;
  std::vector<uint8_t> bitmap_;  // size domain_size_
};

}  // namespace sparse
}  // namespace ustdb

#endif  // USTDB_SPARSE_INDEX_SET_H_
