#include "sparse/index_set.h"

#include <algorithm>

#include "util/string_util.h"

namespace ustdb {
namespace sparse {

IndexSet::IndexSet(uint32_t domain_size, std::vector<uint32_t> sorted)
    : domain_size_(domain_size),
      sorted_(std::move(sorted)),
      bitmap_(domain_size, 0) {
  for (uint32_t i : sorted_) bitmap_[i] = 1;
}

util::Result<IndexSet> IndexSet::FromIndices(uint32_t domain_size,
                                             std::vector<uint32_t> indices) {
  for (uint32_t i : indices) {
    if (i >= domain_size) {
      return util::Status::OutOfRange(util::StringPrintf(
          "index %u outside domain of size %u", i, domain_size));
    }
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return IndexSet(domain_size, std::move(indices));
}

util::Result<IndexSet> IndexSet::FromRange(uint32_t domain_size, uint32_t lo,
                                           uint32_t hi) {
  if (lo > hi) {
    return util::Status::InvalidArgument(
        util::StringPrintf("range lower bound %u > upper bound %u", lo, hi));
  }
  if (hi >= domain_size) {
    return util::Status::OutOfRange(util::StringPrintf(
        "range upper bound %u outside domain of size %u", hi, domain_size));
  }
  std::vector<uint32_t> v(hi - lo + 1);
  for (uint32_t i = lo; i <= hi; ++i) v[i - lo] = i;
  return IndexSet(domain_size, std::move(v));
}

IndexSet IndexSet::Empty(uint32_t domain_size) {
  return IndexSet(domain_size, {});
}

IndexSet IndexSet::All(uint32_t domain_size) {
  std::vector<uint32_t> v(domain_size);
  for (uint32_t i = 0; i < domain_size; ++i) v[i] = i;
  return IndexSet(domain_size, std::move(v));
}

IndexSet IndexSet::Complement() const {
  std::vector<uint32_t> v;
  v.reserve(domain_size_ - sorted_.size());
  for (uint32_t i = 0; i < domain_size_; ++i) {
    if (!bitmap_[i]) v.push_back(i);
  }
  return IndexSet(domain_size_, std::move(v));
}

}  // namespace sparse
}  // namespace ustdb
