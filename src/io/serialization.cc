#include "io/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace ustdb {
namespace io {

namespace {

util::Status OpenFailed(const std::string& path) {
  return util::Status::IOError("cannot open '" + path + "'");
}

util::Result<std::string> ReadLine(std::istream& in, const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    return util::Status::IOError("unexpected end of file in '" + path + "'");
  }
  return line;
}

}  // namespace

util::Status SaveMatrix(const sparse::CsrMatrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenFailed(path);
  out << "ustdb-matrix 1\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  char buf[64];
  for (const sparse::Triplet& t : m.ToTriplets()) {
    std::snprintf(buf, sizeof(buf), "%u %u %.17g\n", t.row, t.col, t.value);
    out << buf;
  }
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

util::Result<sparse::CsrMatrix> LoadMatrix(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailed(path);
  USTDB_ASSIGN_OR_RETURN(std::string header, ReadLine(in, path));
  if (util::Trim(header) != "ustdb-matrix 1") {
    return util::Status::IOError("bad matrix header in '" + path + "'");
  }
  USTDB_ASSIGN_OR_RETURN(std::string dims, ReadLine(in, path));
  const auto fields = util::Split(util::Trim(dims), ' ');
  if (fields.size() != 3) {
    return util::Status::IOError("bad matrix dimension line in '" + path +
                                 "'");
  }
  USTDB_ASSIGN_OR_RETURN(uint64_t rows, util::ParseU64(fields[0]));
  USTDB_ASSIGN_OR_RETURN(uint64_t cols, util::ParseU64(fields[1]));
  USTDB_ASSIGN_OR_RETURN(uint64_t nnz, util::ParseU64(fields[2]));
  std::vector<sparse::Triplet> triplets;
  triplets.reserve(nnz);
  for (uint64_t i = 0; i < nnz; ++i) {
    USTDB_ASSIGN_OR_RETURN(std::string line, ReadLine(in, path));
    const auto f = util::Split(util::Trim(line), ' ');
    if (f.size() != 3) {
      return util::Status::IOError("bad triplet line in '" + path + "'");
    }
    USTDB_ASSIGN_OR_RETURN(uint64_t r, util::ParseU64(f[0]));
    USTDB_ASSIGN_OR_RETURN(uint64_t c, util::ParseU64(f[1]));
    USTDB_ASSIGN_OR_RETURN(double v, util::ParseDouble(f[2]));
    triplets.push_back(
        {static_cast<uint32_t>(r), static_cast<uint32_t>(c), v});
  }
  return sparse::CsrMatrix::FromTriplets(static_cast<uint32_t>(rows),
                                         static_cast<uint32_t>(cols),
                                         std::move(triplets));
}

util::Status SaveChain(const markov::MarkovChain& chain,
                       const std::string& path) {
  return SaveMatrix(chain.matrix(), path);
}

util::Result<markov::MarkovChain> LoadChain(const std::string& path) {
  USTDB_ASSIGN_OR_RETURN(sparse::CsrMatrix m, LoadMatrix(path));
  return markov::MarkovChain::FromMatrix(std::move(m));
}

util::Status SaveRoadNetwork(const network::RoadNetwork& g,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenFailed(path);
  out << "ustdb-roadnet 1\n";
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const network::RoadEdge& e : g.Edges()) {
    out << e.a << ' ' << e.b << '\n';
  }
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

util::Result<network::RoadNetwork> LoadRoadNetwork(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailed(path);
  USTDB_ASSIGN_OR_RETURN(std::string header, ReadLine(in, path));
  if (util::Trim(header) != "ustdb-roadnet 1") {
    return util::Status::IOError("bad road network header in '" + path + "'");
  }
  USTDB_ASSIGN_OR_RETURN(std::string dims, ReadLine(in, path));
  const auto fields = util::Split(util::Trim(dims), ' ');
  if (fields.size() != 2) {
    return util::Status::IOError("bad dimension line in '" + path + "'");
  }
  USTDB_ASSIGN_OR_RETURN(uint64_t nodes, util::ParseU64(fields[0]));
  USTDB_ASSIGN_OR_RETURN(uint64_t edges, util::ParseU64(fields[1]));
  std::vector<network::RoadEdge> edge_list;
  edge_list.reserve(edges);
  for (uint64_t i = 0; i < edges; ++i) {
    USTDB_ASSIGN_OR_RETURN(std::string line, ReadLine(in, path));
    const auto f = util::Split(util::Trim(line), ' ');
    if (f.size() != 2) {
      return util::Status::IOError("bad edge line in '" + path + "'");
    }
    USTDB_ASSIGN_OR_RETURN(uint64_t a, util::ParseU64(f[0]));
    USTDB_ASSIGN_OR_RETURN(uint64_t b, util::ParseU64(f[1]));
    edge_list.push_back(
        {static_cast<uint32_t>(a), static_cast<uint32_t>(b)});
  }
  return network::RoadNetwork::FromEdges(static_cast<uint32_t>(nodes),
                                         std::move(edge_list));
}

util::Status SaveObjects(const core::Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenFailed(path);
  out << "ustdb-objects 1\n";
  out << db.num_objects() << '\n';
  char buf[64];
  for (const core::UncertainObject& obj : db.objects()) {
    out << "object " << obj.chain << ' ' << obj.observations.size() << '\n';
    for (const core::Observation& obs : obj.observations) {
      out << "obs " << obs.time << ' ' << obs.pdf.Support();
      obs.pdf.ForEachNonZero([&](uint32_t i, double x) {
        std::snprintf(buf, sizeof(buf), " %u:%.17g", i, x);
        out << buf;
      });
      out << '\n';
    }
  }
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

util::Status LoadObjectsInto(const std::string& path, core::Database* db) {
  std::ifstream in(path);
  if (!in) return OpenFailed(path);
  auto header = ReadLine(in, path);
  if (!header.ok()) return header.status();
  if (util::Trim(header.value()) != "ustdb-objects 1") {
    return util::Status::IOError("bad objects header in '" + path + "'");
  }
  auto count_line = ReadLine(in, path);
  if (!count_line.ok()) return count_line.status();
  auto count = util::ParseU64(util::Trim(count_line.value()));
  if (!count.ok()) return count.status();

  for (uint64_t i = 0; i < count.value(); ++i) {
    auto obj_line = ReadLine(in, path);
    if (!obj_line.ok()) return obj_line.status();
    const auto f = util::Split(util::Trim(obj_line.value()), ' ');
    if (f.size() != 3 || f[0] != "object") {
      return util::Status::IOError("bad object line in '" + path + "'");
    }
    auto chain = util::ParseU64(f[1]);
    if (!chain.ok()) return chain.status();
    auto num_obs = util::ParseU64(f[2]);
    if (!num_obs.ok()) return num_obs.status();
    if (chain.value() >= db->num_chains()) {
      return util::Status::NotFound(util::StringPrintf(
          "object references chain %" PRIu64 " but only %u chains are loaded",
          chain.value(), db->num_chains()));
    }
    const uint32_t n =
        db->chain(static_cast<ChainId>(chain.value())).num_states();

    std::vector<core::Observation> observations;
    for (uint64_t k = 0; k < num_obs.value(); ++k) {
      auto obs_line = ReadLine(in, path);
      if (!obs_line.ok()) return obs_line.status();
      const auto g = util::Split(util::Trim(obs_line.value()), ' ');
      if (g.size() < 3 || g[0] != "obs") {
        return util::Status::IOError("bad observation line in '" + path +
                                     "'");
      }
      auto time = util::ParseU64(g[1]);
      if (!time.ok()) return time.status();
      auto support = util::ParseU64(g[2]);
      if (!support.ok()) return support.status();
      if (g.size() != 3 + support.value()) {
        return util::Status::IOError("observation support count mismatch in '"
                                     + path + "'");
      }
      std::vector<std::pair<uint32_t, double>> pairs;
      for (uint64_t e = 0; e < support.value(); ++e) {
        const auto kv = util::Split(g[3 + e], ':');
        if (kv.size() != 2) {
          return util::Status::IOError("bad idx:val pair in '" + path + "'");
        }
        auto idx = util::ParseU64(kv[0]);
        if (!idx.ok()) return idx.status();
        auto val = util::ParseDouble(kv[1]);
        if (!val.ok()) return val.status();
        pairs.emplace_back(static_cast<uint32_t>(idx.value()), val.value());
      }
      auto pdf = sparse::ProbVector::FromPairs(n, std::move(pairs));
      if (!pdf.ok()) return pdf.status();
      observations.push_back({static_cast<Timestamp>(time.value()),
                              std::move(pdf).ValueOrDie()});
    }
    auto id = db->AddObject(static_cast<ChainId>(chain.value()),
                            std::move(observations));
    if (!id.ok()) return id.status();
  }
  return util::Status::OK();
}

}  // namespace io
}  // namespace ustdb
