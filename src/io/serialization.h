// Copyright 2026 the ustdb authors.
//
// Plain-text persistence for chains, road networks and databases. Formats
// are line-oriented and versioned by a header tag so files are greppable
// and diff-able; binary compactness is not a goal for this library.

#ifndef USTDB_IO_SERIALIZATION_H_
#define USTDB_IO_SERIALIZATION_H_

#include <string>

#include "core/database.h"
#include "markov/markov_chain.h"
#include "network/road_network.h"
#include "sparse/csr_matrix.h"
#include "util/result.h"

namespace ustdb {
namespace io {

/// \name Sparse matrices
/// Format: "ustdb-matrix 1" header, then "rows cols nnz", then one
/// "row col value" triplet per line.
/// \{
util::Status SaveMatrix(const sparse::CsrMatrix& m, const std::string& path);
util::Result<sparse::CsrMatrix> LoadMatrix(const std::string& path);
/// \}

/// \name Markov chains
/// A chain file is a matrix file that additionally validates stochasticity
/// on load.
/// \{
util::Status SaveChain(const markov::MarkovChain& chain,
                       const std::string& path);
util::Result<markov::MarkovChain> LoadChain(const std::string& path);
/// \}

/// \name Road networks
/// Format: "ustdb-roadnet 1" header, then "num_nodes num_edges", then one
/// "a b" undirected edge per line.
/// \{
util::Status SaveRoadNetwork(const network::RoadNetwork& g,
                             const std::string& path);
util::Result<network::RoadNetwork> LoadRoadNetwork(const std::string& path);
/// \}

/// \name Databases
/// Format: "ustdb-objects 1" header, then "num_objects"; per object a line
/// "object CHAIN NUM_OBSERVATIONS" followed by one observation per line:
/// "obs TIME SUPPORT idx:val idx:val ...". Chains are stored separately
/// (SaveChain) and re-attached on load.
/// \{
util::Status SaveObjects(const core::Database& db, const std::string& path);
/// Loads objects into `db`, which must already contain the referenced
/// chains (in the same order as when saved).
util::Status LoadObjectsInto(const std::string& path, core::Database* db);
/// \}

}  // namespace io
}  // namespace ustdb

#endif  // USTDB_IO_SERIALIZATION_H_
