// Copyright 2026 the ustdb authors.
//
// Umbrella header: the full public API of ustdb — a C++20 reproduction of
// Emrich et al., "Querying Uncertain Spatio-Temporal Data", ICDE 2012.
//
// Quick start (see examples/quickstart.cc for the full program):
//
//   ustdb::markov::MarkovChain chain = ...;        // motion model
//   ustdb::core::QueryWindow window = ...;         // S□ × T□
//   ustdb::core::QueryBasedEngine qb(&chain, window);
//   double p = qb.ExistsProbability(initial_pdf);  // PST∃Q

#ifndef USTDB_USTDB_H_
#define USTDB_USTDB_H_

#include "core/absorbing.h"             // IWYU pragma: export
#include "core/congestion.h"            // IWYU pragma: export
#include "core/cylinder_baseline.h"     // IWYU pragma: export
#include "core/database.h"              // IWYU pragma: export
#include "core/engine_cache.h"          // IWYU pragma: export
#include "core/executor.h"              // IWYU pragma: export
#include "core/forall.h"                // IWYU pragma: export
#include "core/independent_baseline.h"  // IWYU pragma: export
#include "core/k_times.h"               // IWYU pragma: export
#include "core/multi_observation.h"     // IWYU pragma: export
#include "core/object_based.h"          // IWYU pragma: export
#include "core/parallel_processor.h"    // IWYU pragma: export
#include "core/planner.h"               // IWYU pragma: export
#include "core/processor.h"             // IWYU pragma: export
#include "core/query_based.h"           // IWYU pragma: export
#include "core/query_request.h"         // IWYU pragma: export
#include "core/query_window.h"          // IWYU pragma: export
#include "core/shard_router.h"          // IWYU pragma: export
#include "core/smoothing.h"             // IWYU pragma: export
#include "core/threshold.h"             // IWYU pragma: export
#include "core/time_varying_engines.h"  // IWYU pragma: export
#include "exact/possible_worlds.h"      // IWYU pragma: export
#include "geo/drift_model.h"            // IWYU pragma: export
#include "geo/grid.h"                   // IWYU pragma: export
#include "markov/interval_chain.h"      // IWYU pragma: export
#include "markov/markov_chain.h"        // IWYU pragma: export
#include "markov/stationary.h"          // IWYU pragma: export
#include "markov/time_varying_chain.h"  // IWYU pragma: export
#include "mc/monte_carlo.h"             // IWYU pragma: export
#include "network/generators.h"         // IWYU pragma: export
#include "network/road_network.h"       // IWYU pragma: export
#include "obs/metrics.h"                // IWYU pragma: export
#include "obs/trace.h"                  // IWYU pragma: export
#include "sparse/csr_matrix.h"          // IWYU pragma: export
#include "sparse/index_set.h"           // IWYU pragma: export
#include "sparse/prob_vector.h"         // IWYU pragma: export
#include "sparse/types.h"               // IWYU pragma: export
#include "io/serialization.h"           // IWYU pragma: export
#include "service/query_service.h"      // IWYU pragma: export
#include "util/cancellation.h"          // IWYU pragma: export
#include "util/result.h"                // IWYU pragma: export
#include "util/rng.h"                   // IWYU pragma: export
#include "util/status.h"                // IWYU pragma: export
#include "util/stopwatch.h"             // IWYU pragma: export
#include "workload/query_gen.h"         // IWYU pragma: export
#include "workload/synthetic.h"         // IWYU pragma: export

#endif  // USTDB_USTDB_H_
