// Copyright 2026 the ustdb authors.
//
// Monte-Carlo baseline — the paper's competitor (Section VIII-A): "The MC
// approach samples paths of each object and outputs the fraction of the
// sampled paths which fulfill the query predicate." Sampling error follows
// the Bernoulli bound σ = sqrt(p(1−p)/n); with the paper's 100 samples the
// standard deviation is at least 5 percentage points near p = 0.5.

#ifndef USTDB_MC_MONTE_CARLO_H_
#define USTDB_MC_MONTE_CARLO_H_

#include <vector>

#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"
#include "util/rng.h"

namespace ustdb {
namespace mc {

/// \brief Draws trajectories from a chain. Per-row cumulative distributions
/// are precomputed once so each step is a binary search.
class TrajectorySampler {
 public:
  /// \param chain must outlive the sampler.
  explicit TrajectorySampler(const markov::MarkovChain* chain);

  /// Draws a start state from an initial pdf (mass may be < 1 after
  /// normalization drift; the residual is assigned to the last support
  /// entry).
  StateIndex SampleInitial(const sparse::ProbVector& initial,
                           util::Rng* rng) const;

  /// Draws o(t+1) given o(t) = s.
  StateIndex SampleNext(StateIndex s, util::Rng* rng) const;

  /// Samples a full trajectory of `length`+1 states starting from
  /// `initial`.
  std::vector<StateIndex> SamplePath(const sparse::ProbVector& initial,
                                     uint32_t length, util::Rng* rng) const;

  const markov::MarkovChain& chain() const { return *chain_; }

 private:
  const markov::MarkovChain* chain_;
  // Per-row cumulative sums over the CSR values, aligned with the chain's
  // column-index array; row r occupies [row_offset_[r], row_offset_[r+1]).
  std::vector<double> cumulative_;
  std::vector<size_t> row_offset_;
};

/// Tuning knobs for the Monte-Carlo engine.
struct MonteCarloOptions {
  uint32_t num_samples = 100;  ///< the paper's default
  uint64_t seed = 1234;
};

/// Point estimate plus its Bernoulli standard error.
struct McEstimate {
  double probability = 0.0;
  double std_error = 0.0;  ///< sqrt(p̂(1−p̂)/n)
  uint32_t num_samples = 0;
};

/// \brief Approximate PST∃Q / PST∀Q / PSTkQ by path sampling.
class MonteCarloEngine {
 public:
  /// \pre window.region().domain_size() == chain->num_states(); `chain`
  /// must outlive the engine.
  MonteCarloEngine(const markov::MarkovChain* chain, core::QueryWindow window,
                   MonteCarloOptions options = {});

  /// Estimate of P∃(o, S□, T□).
  McEstimate ExistsProbability(const sparse::ProbVector& initial) const;

  /// Estimate of P∀(o, S□, T□).
  McEstimate ForAllProbability(const sparse::ProbVector& initial) const;

  /// Estimated distribution of the window-visit count (sums to one).
  std::vector<double> KTimesDistribution(
      const sparse::ProbVector& initial) const;

 private:
  /// Number of window timestamps at which one sampled path is inside S□.
  uint32_t CountVisits(const std::vector<StateIndex>& path) const;

  TrajectorySampler sampler_;
  core::QueryWindow window_;
  MonteCarloOptions options_;
};

}  // namespace mc
}  // namespace ustdb

#endif  // USTDB_MC_MONTE_CARLO_H_
