#include "mc/monte_carlo.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ustdb {
namespace mc {

TrajectorySampler::TrajectorySampler(const markov::MarkovChain* chain)
    : chain_(chain) {
  assert(chain_ != nullptr);
  const sparse::CsrMatrix& m = chain_->matrix();
  cumulative_.reserve(m.nnz());
  row_offset_.assign(m.rows() + 1, 0);
  for (uint32_t r = 0; r < m.rows(); ++r) {
    double acc = 0.0;
    for (double v : m.RowValues(r)) {
      acc += v;
      cumulative_.push_back(acc);
    }
    row_offset_[r + 1] = cumulative_.size();
  }
}

StateIndex TrajectorySampler::SampleInitial(const sparse::ProbVector& initial,
                                            util::Rng* rng) const {
  const double target = rng->NextDouble() * initial.Sum();
  double acc = 0.0;
  StateIndex chosen = 0;
  bool found = false;
  initial.ForEachNonZero([&](uint32_t i, double x) {
    if (found) return;
    acc += x;
    chosen = i;
    if (acc >= target) found = true;
  });
  return chosen;  // residual mass falls to the last support entry
}

StateIndex TrajectorySampler::SampleNext(StateIndex s, util::Rng* rng) const {
  const sparse::CsrMatrix& m = chain_->matrix();
  auto idx = m.RowIndices(s);
  assert(!idx.empty() && "stochastic rows cannot be empty");
  // Row slice of the cumulative array: binary search for the target mass.
  const double* lo = cumulative_.data() + row_offset_[s];
  const double* hi = cumulative_.data() + row_offset_[s + 1];
  const double target = rng->NextDouble() * *(hi - 1);
  const double* it = std::lower_bound(lo, hi, target);
  if (it == hi) it = hi - 1;
  return idx[static_cast<size_t>(it - lo)];
}

std::vector<StateIndex> TrajectorySampler::SamplePath(
    const sparse::ProbVector& initial, uint32_t length,
    util::Rng* rng) const {
  std::vector<StateIndex> path;
  path.reserve(length + 1);
  path.push_back(SampleInitial(initial, rng));
  for (uint32_t t = 0; t < length; ++t) {
    path.push_back(SampleNext(path.back(), rng));
  }
  return path;
}

MonteCarloEngine::MonteCarloEngine(const markov::MarkovChain* chain,
                                   core::QueryWindow window,
                                   MonteCarloOptions options)
    : sampler_(chain), window_(std::move(window)), options_(options) {}

uint32_t MonteCarloEngine::CountVisits(
    const std::vector<StateIndex>& path) const {
  uint32_t visits = 0;
  for (Timestamp t : window_.times()) {
    if (window_.region().Contains(path[t])) ++visits;
  }
  return visits;
}

McEstimate MonteCarloEngine::ExistsProbability(
    const sparse::ProbVector& initial) const {
  util::Rng rng(options_.seed);
  uint32_t hits = 0;
  for (uint32_t i = 0; i < options_.num_samples; ++i) {
    const std::vector<StateIndex> path =
        sampler_.SamplePath(initial, window_.t_end(), &rng);
    if (CountVisits(path) > 0) ++hits;
  }
  McEstimate e;
  e.num_samples = options_.num_samples;
  e.probability = static_cast<double>(hits) / options_.num_samples;
  e.std_error =
      std::sqrt(e.probability * (1.0 - e.probability) / options_.num_samples);
  return e;
}

McEstimate MonteCarloEngine::ForAllProbability(
    const sparse::ProbVector& initial) const {
  util::Rng rng(options_.seed);
  uint32_t hits = 0;
  for (uint32_t i = 0; i < options_.num_samples; ++i) {
    const std::vector<StateIndex> path =
        sampler_.SamplePath(initial, window_.t_end(), &rng);
    if (CountVisits(path) == window_.num_times()) ++hits;
  }
  McEstimate e;
  e.num_samples = options_.num_samples;
  e.probability = static_cast<double>(hits) / options_.num_samples;
  e.std_error =
      std::sqrt(e.probability * (1.0 - e.probability) / options_.num_samples);
  return e;
}

std::vector<double> MonteCarloEngine::KTimesDistribution(
    const sparse::ProbVector& initial) const {
  util::Rng rng(options_.seed);
  std::vector<uint32_t> counts(window_.num_times() + 1, 0);
  for (uint32_t i = 0; i < options_.num_samples; ++i) {
    const std::vector<StateIndex> path =
        sampler_.SamplePath(initial, window_.t_end(), &rng);
    ++counts[CountVisits(path)];
  }
  std::vector<double> out(counts.size());
  for (size_t k = 0; k < counts.size(); ++k) {
    out[k] = static_cast<double>(counts[k]) / options_.num_samples;
  }
  return out;
}

}  // namespace mc
}  // namespace ustdb
