// Copyright 2026 the ustdb authors.
//
// Explicit construction of the paper's augmented transition matrices.
//
// Section V-A injects the query predicate into the Markov chain itself by
// adding an absorbing "true hit" state ◆ and deriving two matrices from M:
//
//   M− = | M        0 |        M+ = | M'  sum(S□) |
//        | 0ᵀ       1 |             | 0   1       |
//
// where M' is M with the columns of S□ zeroed and sum(S□) holds the per-row
// mass removed that way. M− is used for transitions into timestamps outside
// T□, M+ for transitions into timestamps inside T□.
//
// Section VI doubles the state space instead (s and s◾ copies) so that
// worlds which already hit the window retain their location — required when
// later observations must re-weight them:
//
//   M− = | M  0 |          M+ = | M−M''  M'' |
//        | 0  M |               | 0      M   |
//
// where M'' keeps only the columns of S□.
//
// Section VII (PSTkQ) generalizes to |T□|+1 copies of S counting window
// visits.
//
// These builders are the "matrix library" flavour of the framework (the
// paper runs on MATLAB); the engines also implement the same semantics
// implicitly without materializing the augmented matrices. Both paths are
// tested for equality and benchmarked against each other
// (bench_ablation_matrices).

#ifndef USTDB_CORE_ABSORBING_H_
#define USTDB_CORE_ABSORBING_H_

#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "sparse/csr_matrix.h"
#include "sparse/prob_vector.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// The M−/M+ pair of one of the paper's augmented constructions.
struct AugmentedMatrices {
  sparse::CsrMatrix minus;  ///< used for transitions into t ∉ T□
  sparse::CsrMatrix plus;   ///< used for transitions into t ∈ T□
};

/// \brief Section V-A matrices with a single absorbing ◆ state.
/// Result dimension: (n+1) × (n+1); ◆ has index n.
AugmentedMatrices BuildAbsorbingMatrices(const markov::MarkovChain& chain,
                                         const sparse::IndexSet& region);

/// \brief The *transposed* Section V-A matrices (M−)ᵀ/(M+)ᵀ, which the
/// explicit query-based backward pass multiplies with. Derived directly
/// from the chain's memoized Mᵀ —
///
///   (M−)ᵀ = | Mᵀ          0 |     (M+)ᵀ = | M'ᵀ         0 |
///           | 0ᵀ          1 |             | sum(S□)ᵀ    1 |
///
/// where M'ᵀ is Mᵀ with the *rows* of S□ emptied — so building a QB
/// engine never re-materializes M± only to transpose them again: the
/// expensive per-chain transposition is paid once (MarkovChain caches it)
/// and every (chain, window) build after that is a linear assembly.
/// Fields hold the transposed matrices despite the struct's field names.
AugmentedMatrices BuildAbsorbingTransposed(const markov::MarkovChain& chain,
                                           const sparse::IndexSet& region);

/// \brief Section VI doubled-state matrices (s at index i, s◾ at index n+i).
/// Result dimension: 2n × 2n.
AugmentedMatrices BuildDoubledMatrices(const markov::MarkovChain& chain,
                                       const sparse::IndexSet& region);

/// \brief Section VII block matrices over S × {0..K} for the k-times query
/// (state (s, k) at index k·n + s). K = num_window_times = |T□|.
/// Result dimension: (K+1)n × (K+1)n.
///
/// Note: the paper prints the last block row of M+ as (…, M−M'', M''),
/// which would leak mass out of a (K+1)-block matrix; since a trajectory can
/// visit at most K = |T□| window timestamps, mass at level K never needs to
/// be incremented again, so we keep the last block row as plain M (which
/// preserves stochasticity and yields identical query answers).
AugmentedMatrices BuildKTimesMatrices(const markov::MarkovChain& chain,
                                      const sparse::IndexSet& region,
                                      uint32_t num_window_times);

/// \brief Replaces the entries of `v` inside `region` with exactly 1.0 —
/// the backward pass's terminal clamp at a window time with no product
/// following it (query-based and time-varying start vectors; the mid-loop
/// clamps are fused into the product via MultiplyClamped).
void ClampRegionToOnes(const sparse::IndexSet& region, sparse::ProbVector* v);

/// \brief Extends an initial distribution over S to the (n+1)-dim absorbing
/// space of BuildAbsorbingMatrices. If t=0 ∈ T□ the region mass is moved to
/// ◆ ("we adjust the initial vector by moving all probabilities of states in
/// S□ to state ◆").
sparse::ProbVector ExtendInitialAbsorbing(const sparse::ProbVector& initial,
                                          const QueryWindow& window);

/// \brief Extends an initial distribution over S to the 2n-dim doubled space
/// (region mass moves to the ◾ copy when t=0 ∈ T□).
sparse::ProbVector ExtendInitialDoubled(const sparse::ProbVector& initial,
                                        const QueryWindow& window);

/// \brief Extends an initial distribution over S to the (K+1)n-dim k-times
/// space (region mass starts at level k=1 when t=0 ∈ T□).
sparse::ProbVector ExtendInitialKTimes(const sparse::ProbVector& initial,
                                       const QueryWindow& window,
                                       uint32_t num_window_times);

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_ABSORBING_H_
