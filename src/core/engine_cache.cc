#include "core/engine_cache.h"

namespace ustdb {
namespace core {

const QueryBasedEngine* EngineCache::Get(const markov::MarkovChain* chain,
                                         const QueryWindow& window) {
  if (const QueryBasedEngine* hit = Lookup(chain, window)) return hit;
  return Put(chain, window,
             std::make_unique<QueryBasedEngine>(chain, window));
}

const QueryBasedEngine* EngineCache::Lookup(const markov::MarkovChain* chain,
                                            const QueryWindow& window) {
  Key key{chain, window.region().elements(), window.times()};
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  // Move to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->engine.get();
}

const QueryBasedEngine* EngineCache::Put(
    const markov::MarkovChain* chain, const QueryWindow& window,
    std::unique_ptr<QueryBasedEngine> engine) {
  Key key{chain, window.region().elements(), window.times()};
  auto it = index_.find(key);
  if (it != index_.end()) return it->second->engine.get();
  if (lru_.size() >= capacity_) {
    ++stats_.evictions;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, std::move(engine)});
  index_[std::move(key)] = lru_.begin();
  return lru_.front().engine.get();
}

void EngineCache::Clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace core
}  // namespace ustdb
