#include "core/engine_cache.h"

#include "util/fault_injector.h"

namespace ustdb {
namespace core {

namespace {

/// Cache-admission fault point. Put* returns a borrowed pointer with no
/// error channel, so a firing `fail` rule escalates to the same exception
/// a `throw` rule raises; both are converted to kUnavailable at the
/// executor's Run/RunBatch boundary (admission always happens on the
/// run's controlling thread, never on a pool worker).
void InjectCacheAdmissionFault() {
  if (util::FaultInjector* fi = util::FaultInjector::Active()) {
    util::Status status = fi->Inject(util::FaultPoint::kCacheAdmission);
    if (!status.ok()) throw util::FaultInjectedError(status.message());
  }
}

}  // namespace

const QueryBasedEngine* EngineCache::Get(const markov::MarkovChain* chain,
                                         const QueryWindow& window,
                                         DataVersion epoch) {
  if (const QueryBasedEngine* hit = Lookup(chain, window, epoch)) return hit;
  // Standing-query fast path: a cached pass for this window shifted
  // backward extends in delta steps instead of a cold t_end-step build.
  Timestamp delta = 0;
  if (const QueryBasedEngine* base =
          LookupShiftBase(chain, window, epoch, &delta)) {
    return Put(chain, window,
               std::make_unique<QueryBasedEngine>(*base, window, delta),
               epoch);
  }
  return Put(chain, window, std::make_unique<QueryBasedEngine>(chain, window),
             epoch);
}

const QueryBasedEngine* EngineCache::Lookup(const markov::MarkovChain* chain,
                                            const QueryWindow& window,
                                            DataVersion epoch) {
  Key key{chain, window.region().elements(), window.times()};
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->epoch != epoch) {
    // Lazy invalidation: the chain's data moved past this entry's build
    // epoch; drop exactly this entry — untouched chains keep theirs.
    ++stats_.invalidations;
    ++stats_.misses;
    lru_.erase(it->second);
    index_.erase(it);
    return nullptr;
  }
  ++stats_.hits;
  // Move to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->engine.get();
}

const QueryBasedEngine* EngineCache::LookupShiftBase(
    const markov::MarkovChain* chain, const QueryWindow& window,
    DataVersion epoch, Timestamp* delta) {
  const std::vector<uint32_t>& region = window.region().elements();
  const std::vector<Timestamp>& times = window.times();
  if (times.empty()) return nullptr;
  // Candidates share (chain, region) — a contiguous key range. Pick the
  // smallest offset: the cheapest extension.
  auto it = index_.lower_bound(Key{chain, region, {}});
  std::list<Entry>::iterator best;
  Timestamp best_delta = 0;
  for (; it != index_.end() && it->first.chain == chain &&
         it->first.region == region;
       ++it) {
    const std::vector<Timestamp>& base_times = it->first.times;
    if (base_times.size() != times.size()) continue;
    if (base_times.front() >= times.front()) continue;
    const Timestamp d = times.front() - base_times.front();
    if (best_delta != 0 && d >= best_delta) continue;
    bool aligned = true;
    for (size_t i = 1; i < times.size(); ++i) {
      if (base_times[i] + d != times[i]) {
        aligned = false;
        break;
      }
    }
    if (!aligned || it->second->epoch != epoch) continue;
    best = it->second;
    best_delta = d;
  }
  if (best_delta == 0) return nullptr;
  ++stats_.shift_extends;
  lru_.splice(lru_.begin(), lru_, best);
  *delta = best_delta;
  return best->engine.get();
}

const QueryBasedEngine* EngineCache::Put(
    const markov::MarkovChain* chain, const QueryWindow& window,
    std::unique_ptr<QueryBasedEngine> engine, DataVersion epoch) {
  InjectCacheAdmissionFault();
  Key key{chain, window.region().elements(), window.times()};
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->epoch == epoch) return it->second->engine.get();
    // Replace the stale pass in place: same key, fresh epoch.
    ++stats_.invalidations;
    it->second->engine = std::move(engine);
    it->second->epoch = epoch;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->engine.get();
  }
  if (lru_.size() >= capacity_) {
    ++stats_.evictions;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, std::move(engine), epoch});
  index_[std::move(key)] = lru_.begin();
  return lru_.front().engine.get();
}

const markov::IntervalMarkovChain* EngineCache::LookupEnvelope(
    ChainId leader, uint32_t num_members, DataVersion epoch) {
  bool invalidated = false;
  const markov::IntervalMarkovChain* hit =
      envelopes_.Lookup(ClusterKey{leader, num_members}, epoch, &invalidated);
  if (invalidated) ++stats_.invalidations;
  ++(hit != nullptr ? stats_.bound_hits : stats_.bound_misses);
  return hit;
}

const markov::IntervalMarkovChain* EngineCache::PutEnvelope(
    ChainId leader, uint32_t num_members, markov::IntervalMarkovChain envelope,
    DataVersion epoch) {
  InjectCacheAdmissionFault();
  bool evicted = false;
  bool invalidated = false;
  const markov::IntervalMarkovChain* cached = envelopes_.Put(
      ClusterKey{leader, num_members}, std::move(envelope), epoch, capacity_,
      &evicted, &invalidated);
  if (evicted) ++stats_.bound_evictions;
  if (invalidated) ++stats_.invalidations;
  return cached;
}

const std::vector<markov::ProbBound>* EngineCache::LookupBounds(
    ChainId leader, uint32_t num_members, const QueryWindow& window,
    DataVersion epoch) {
  bool invalidated = false;
  const std::vector<markov::ProbBound>* hit = bounds_.Lookup(
      BoundsKey{{leader, num_members}, window.region().elements(),
                window.times()},
      epoch, &invalidated);
  if (invalidated) ++stats_.invalidations;
  ++(hit != nullptr ? stats_.bound_hits : stats_.bound_misses);
  return hit;
}

const std::vector<markov::ProbBound>* EngineCache::PutBounds(
    ChainId leader, uint32_t num_members, const QueryWindow& window,
    std::vector<markov::ProbBound> bounds, DataVersion epoch) {
  InjectCacheAdmissionFault();
  bool evicted = false;
  bool invalidated = false;
  const std::vector<markov::ProbBound>* cached = bounds_.Put(
      BoundsKey{{leader, num_members}, window.region().elements(),
                window.times()},
      std::move(bounds), epoch, capacity_, &evicted, &invalidated);
  if (evicted) ++stats_.bound_evictions;
  if (invalidated) ++stats_.invalidations;
  return cached;
}

void EngineCache::Clear() {
  lru_.clear();
  index_.clear();
  envelopes_.lru.clear();
  envelopes_.index.clear();
  bounds_.lru.clear();
  bounds_.index.clear();
}

}  // namespace core
}  // namespace ustdb
