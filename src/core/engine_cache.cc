#include "core/engine_cache.h"

#include "util/fault_injector.h"

namespace ustdb {
namespace core {

namespace {

/// Cache-admission fault point. Put* returns a borrowed pointer with no
/// error channel, so a firing `fail` rule escalates to the same exception
/// a `throw` rule raises; both are converted to kUnavailable at the
/// executor's Run/RunBatch boundary (admission always happens on the
/// run's controlling thread, never on a pool worker).
void InjectCacheAdmissionFault() {
  if (util::FaultInjector* fi = util::FaultInjector::Active()) {
    util::Status status = fi->Inject(util::FaultPoint::kCacheAdmission);
    if (!status.ok()) throw util::FaultInjectedError(status.message());
  }
}

}  // namespace

const QueryBasedEngine* EngineCache::Get(const markov::MarkovChain* chain,
                                         const QueryWindow& window) {
  if (const QueryBasedEngine* hit = Lookup(chain, window)) return hit;
  return Put(chain, window,
             std::make_unique<QueryBasedEngine>(chain, window));
}

const QueryBasedEngine* EngineCache::Lookup(const markov::MarkovChain* chain,
                                            const QueryWindow& window) {
  Key key{chain, window.region().elements(), window.times()};
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  // Move to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->engine.get();
}

const QueryBasedEngine* EngineCache::Put(
    const markov::MarkovChain* chain, const QueryWindow& window,
    std::unique_ptr<QueryBasedEngine> engine) {
  InjectCacheAdmissionFault();
  Key key{chain, window.region().elements(), window.times()};
  auto it = index_.find(key);
  if (it != index_.end()) return it->second->engine.get();
  if (lru_.size() >= capacity_) {
    ++stats_.evictions;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, std::move(engine)});
  index_[std::move(key)] = lru_.begin();
  return lru_.front().engine.get();
}

const markov::IntervalMarkovChain* EngineCache::LookupEnvelope(
    ChainId leader, uint32_t num_members) {
  const markov::IntervalMarkovChain* hit =
      envelopes_.Lookup(ClusterKey{leader, num_members});
  ++(hit != nullptr ? stats_.bound_hits : stats_.bound_misses);
  return hit;
}

const markov::IntervalMarkovChain* EngineCache::PutEnvelope(
    ChainId leader, uint32_t num_members,
    markov::IntervalMarkovChain envelope) {
  InjectCacheAdmissionFault();
  bool evicted = false;
  const markov::IntervalMarkovChain* cached = envelopes_.Put(
      ClusterKey{leader, num_members}, std::move(envelope), capacity_,
      &evicted);
  if (evicted) ++stats_.bound_evictions;
  return cached;
}

const std::vector<markov::ProbBound>* EngineCache::LookupBounds(
    ChainId leader, uint32_t num_members, const QueryWindow& window) {
  const std::vector<markov::ProbBound>* hit = bounds_.Lookup(
      BoundsKey{{leader, num_members}, window.region().elements(),
                window.times()});
  ++(hit != nullptr ? stats_.bound_hits : stats_.bound_misses);
  return hit;
}

const std::vector<markov::ProbBound>* EngineCache::PutBounds(
    ChainId leader, uint32_t num_members, const QueryWindow& window,
    std::vector<markov::ProbBound> bounds) {
  InjectCacheAdmissionFault();
  bool evicted = false;
  const std::vector<markov::ProbBound>* cached = bounds_.Put(
      BoundsKey{{leader, num_members}, window.region().elements(),
                window.times()},
      std::move(bounds), capacity_, &evicted);
  if (evicted) ++stats_.bound_evictions;
  return cached;
}

void EngineCache::Clear() {
  lru_.clear();
  index_.clear();
  envelopes_.lru.clear();
  envelopes_.index.clear();
  bounds_.lru.clear();
  bounds_.index.clear();
}

}  // namespace core
}  // namespace ustdb
