// Copyright 2026 the ustdb authors.
//
// QueryProcessor — the front door of the framework: evaluates the three
// probabilistic spatio-temporal query types of Section III over a whole
// Database, dispatching to the object-based or query-based plan and to the
// multi-observation engine where an object's history requires it.

#ifndef USTDB_CORE_PROCESSOR_H_
#define USTDB_CORE_PROCESSOR_H_

#include <vector>

#include "core/database.h"
#include "core/forall.h"
#include "core/k_times.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "core/threshold.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// Which query evaluation plan to run.
enum class Plan {
  /// Forward per-object evaluation (Section V-A).
  kObjectBased,
  /// Backward per-chain evaluation, amortized over objects (Section V-B).
  kQueryBased,
};

/// Options shared by all QueryProcessor entry points.
struct ProcessorOptions {
  Plan plan = Plan::kQueryBased;
  MatrixMode matrix_mode = MatrixMode::kImplicit;
};

/// Distribution over visit counts for one object (PSTkQ answer).
struct ObjectKTimes {
  ObjectId id = 0;
  /// Element k = P(object inside S□ at exactly k timestamps of T□).
  std::vector<double> distribution;
};

/// \brief Stateless facade evaluating queries over a Database.
///
/// Thread-compatible: distinct QueryProcessor instances may run on distinct
/// threads; a single instance must not be shared without synchronization.
class QueryProcessor {
 public:
  /// \param db must outlive the processor.
  explicit QueryProcessor(const Database* db) : db_(db) {}

  /// \brief PST∃Q (Definition 2): for every object, the probability that it
  /// intersects the window. Objects with multiple observations are routed
  /// through the Section VI engine regardless of the chosen plan.
  util::Result<std::vector<ObjectProbability>> Exists(
      const QueryWindow& window, const ProcessorOptions& options = {}) const;

  /// \brief PST∀Q (Definition 3): probability of remaining inside S□ at all
  /// t ∈ T□, via the complement reduction of Section VII.
  util::Result<std::vector<ObjectProbability>> ForAll(
      const QueryWindow& window, const ProcessorOptions& options = {}) const;

  /// \brief PSTkQ (Definition 4): full visit-count distribution per object.
  /// Only defined for single-observation objects (the paper's setting);
  /// fails with kUnimplemented if the database contains multi-observation
  /// objects.
  util::Result<std::vector<ObjectKTimes>> KTimes(
      const QueryWindow& window, const ProcessorOptions& options = {}) const;

  const Database& db() const { return *db_; }

 private:
  util::Result<std::vector<ObjectProbability>> ExistsImpl(
      const QueryWindow& window, const ProcessorOptions& options) const;

  const Database* db_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_PROCESSOR_H_
