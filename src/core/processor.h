// Copyright 2026 the ustdb authors.
//
// QueryProcessor — sequential facade over the planner/executor pipeline.
// Historically this class was the framework's front door; query execution
// now lives in core::QueryExecutor (see executor.h), which adds cost-based
// plan selection, parallelism, and engine caching for every predicate.
// QueryProcessor remains as a thin, deterministic, single-threaded wrapper
// for callers that want the original API.

#ifndef USTDB_CORE_PROCESSOR_H_
#define USTDB_CORE_PROCESSOR_H_

#include <vector>

#include "core/database.h"
#include "core/forall.h"
#include "core/k_times.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "core/query_request.h"
#include "core/threshold.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// Options shared by all QueryProcessor entry points.
struct ProcessorOptions {
  Plan plan = Plan::kQueryBased;
  MatrixMode matrix_mode = MatrixMode::kImplicit;
};

/// \brief Stateless facade evaluating queries over a Database.
/// \deprecated Prefer core::QueryExecutor, which serves the same answers
/// with plan auto-selection, parallelism, and engine caching.
///
/// Thread-compatible: distinct QueryProcessor instances may run on distinct
/// threads; a single instance must not be shared without synchronization.
class QueryProcessor {
 public:
  /// \param db must outlive the processor.
  explicit QueryProcessor(const Database* db) : db_(db) {}

  /// \brief PST∃Q (Definition 2): for every object, the probability that it
  /// intersects the window. Objects with multiple observations are routed
  /// through the Section VI engine regardless of the chosen plan.
  util::Result<std::vector<ObjectProbability>> Exists(
      const QueryWindow& window, const ProcessorOptions& options = {}) const;

  /// \brief PST∀Q (Definition 3): probability of remaining inside S□ at all
  /// t ∈ T□, via the complement reduction of Section VII.
  util::Result<std::vector<ObjectProbability>> ForAll(
      const QueryWindow& window, const ProcessorOptions& options = {}) const;

  /// \brief PSTkQ (Definition 4): full visit-count distribution per object.
  /// Only defined for single-observation objects (the paper's setting);
  /// fails with kUnimplemented if the database contains multi-observation
  /// objects.
  util::Result<std::vector<ObjectKTimes>> KTimes(
      const QueryWindow& window, const ProcessorOptions& options = {}) const;

  const Database& db() const { return *db_; }

 private:
  const Database* db_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_PROCESSOR_H_
