#include "core/multi_observation.h"

#include <cassert>

#include "util/string_util.h"

namespace ustdb {
namespace core {

namespace {
using sparse::ProbVector;
}  // namespace

MultiObservationEngine::MultiObservationEngine(
    const markov::MarkovChain* chain, QueryWindow window,
    MultiObservationOptions options)
    : chain_(chain), window_(std::move(window)), options_(options) {
  assert(chain_ != nullptr);
  assert(window_.region().domain_size() == chain_->num_states());
}

util::Status MultiObservationEngine::ValidateObservations(
    const std::vector<Observation>& observations) const {
  if (observations.empty()) {
    return util::Status::InvalidArgument("at least one observation required");
  }
  for (size_t i = 0; i < observations.size(); ++i) {
    if (observations[i].pdf.size() != chain_->num_states()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "observation %zu has pdf dimension %u, expected %u", i,
          observations[i].pdf.size(), chain_->num_states()));
    }
    if (observations[i].pdf.Sum() <= 0.0) {
      return util::Status::InvalidArgument(
          util::StringPrintf("observation %zu has zero mass", i));
    }
    if (i > 0 && observations[i].time <= observations[i - 1].time) {
      return util::Status::InvalidArgument(
          "observations must be sorted by strictly increasing time");
    }
  }
  if (observations.front().time > window_.t_begin()) {
    return util::Status::Unimplemented(
        "query timestamps before the first observation require backward "
        "smoothing, which the paper's framework (and ustdb) does not cover");
  }
  return util::Status::OK();
}

util::Result<MultiObsResult> MultiObservationEngine::Evaluate(
    const std::vector<Observation>& observations) const {
  USTDB_RETURN_NOT_OK(ValidateObservations(observations));
  return options_.mode == MatrixMode::kExplicit ? RunExplicit(observations)
                                                : RunImplicit(observations);
}

util::Result<MultiObsResult> MultiObservationEngine::RunImplicit(
    const std::vector<Observation>& observations) const {
  const uint32_t n = chain_->num_states();
  sparse::VecMatWorkspace ws;
  const sparse::CsrMatrix& m = chain_->matrix();
  const sparse::CsrMatrix* mt = nullptr;  // fetched on first dense step

  // u: worlds that have not hit the window; w: worlds that have, keyed by
  // their *current* state (the doubled space of Section VI, kept as two
  // n-dim vectors instead of one 2n-dim vector).
  ProbVector u = observations.front().pdf;
  util::Status st = u.Normalize();
  if (!st.ok()) return st;
  ProbVector w = ProbVector::Zero(n);

  double surviving = 1.0;
  const Timestamp t_start = observations.front().time;
  if (window_.ContainsTime(t_start)) {
    w.AddEntries(u.ExtractEntriesIn(window_.region()));
  }

  const Timestamp t_stop =
      std::max(window_.t_end(), observations.back().time);
  std::vector<std::pair<uint32_t, double>> moved;
  size_t next_obs = 1;
  for (Timestamp t = t_start + 1; t <= t_stop; ++t) {
    // At window times the move of u's region mass into w is fused into
    // u's product; w receives it after its own product, as before.
    if (mt == nullptr && (!u.IsSparse() || !w.IsSparse())) {
      mt = &chain_->transposed();
    }
    if (window_.ContainsTime(t)) {
      ws.MultiplyAndExtractEntries(u, m, window_.region(), &u, &moved, mt);
      ws.Multiply(w, m, &w, mt);
      w.AddEntries(moved);
    } else {
      ws.Multiply(u, m, &u, mt);
      ws.Multiply(w, m, &w, mt);
    }

    if (next_obs < observations.size() &&
        observations[next_obs].time == t) {
      // Lemma 1: condition both halves on the observation (the observation
      // carries no information about hit status).
      USTDB_RETURN_NOT_OK(u.PointwiseMultiply(observations[next_obs].pdf));
      USTDB_RETURN_NOT_OK(w.PointwiseMultiply(observations[next_obs].pdf));
      const double mass = u.Sum() + w.Sum();
      if (mass <= 0.0) {
        return util::Status::Inconsistent(util::StringPrintf(
            "observation at t=%u is inconsistent with all possible worlds",
            observations[next_obs].time));
      }
      if (options_.eager_normalization) {
        surviving *= mass;
        u.Scale(1.0 / mass);
        w.Scale(1.0 / mass);
      }
      ++next_obs;
    }
  }

  const double mass_u = u.Sum();
  const double mass_w = w.Sum();
  const double mass = mass_u + mass_w;  // P(B) + P(C), possibly rescaled
  if (mass <= 0.0) {
    return util::Status::Inconsistent(
        "no possible world survives the observations");
  }

  MultiObsResult result;
  result.exists_probability = mass_w / mass;  // Equation 1
  result.surviving_mass = options_.eager_normalization ? surviving : mass;

  std::vector<std::pair<uint32_t, double>> merged;
  u.ForEachNonZero(
      [&](uint32_t i, double x) { merged.emplace_back(i, x / mass); });
  w.ForEachNonZero(
      [&](uint32_t i, double x) { merged.emplace_back(i, x / mass); });
  USTDB_ASSIGN_OR_RETURN(result.posterior,
                         ProbVector::FromPairs(n, std::move(merged)));
  return result;
}

util::Result<MultiObsResult> MultiObservationEngine::RunExplicit(
    const std::vector<Observation>& observations) const {
  const uint32_t n = chain_->num_states();
  AugmentedMatrices aug = BuildDoubledMatrices(*chain_, window_.region());
  sparse::VecMatWorkspace ws;

  ProbVector first = observations.front().pdf;
  util::Status st = first.Normalize();
  if (!st.ok()) return st;
  // Doubled initial vector: region mass moves to the ◾ copy when the first
  // observation time is itself a window timestamp.
  const Timestamp t_start = observations.front().time;
  std::vector<std::pair<uint32_t, double>> pairs;
  const bool redirect = window_.ContainsTime(t_start);
  first.ForEachNonZero([&](uint32_t i, double x) {
    if (redirect && window_.region().Contains(i)) {
      pairs.emplace_back(n + i, x);
    } else {
      pairs.emplace_back(i, x);
    }
  });
  USTDB_ASSIGN_OR_RETURN(ProbVector v,
                         ProbVector::FromPairs(2 * n, std::move(pairs)));

  double surviving = 1.0;
  const Timestamp t_stop =
      std::max(window_.t_end(), observations.back().time);
  size_t next_obs = 1;
  for (Timestamp t = t_start + 1; t <= t_stop; ++t) {
    const sparse::CsrMatrix& m =
        window_.ContainsTime(t) ? aug.plus : aug.minus;
    ws.Multiply(v, m, &v);

    if (next_obs < observations.size() &&
        observations[next_obs].time == t) {
      // Extended observation vector (pdf, pdf): no hit information.
      std::vector<std::pair<uint32_t, double>> ext;
      observations[next_obs].pdf.ForEachNonZero([&](uint32_t i, double x) {
        ext.emplace_back(i, x);
        ext.emplace_back(n + i, x);
      });
      USTDB_ASSIGN_OR_RETURN(ProbVector obs_ext,
                             ProbVector::FromPairs(2 * n, std::move(ext)));
      USTDB_RETURN_NOT_OK(v.PointwiseMultiply(obs_ext));
      const double mass = v.Sum();
      if (mass <= 0.0) {
        return util::Status::Inconsistent(util::StringPrintf(
            "observation at t=%u is inconsistent with all possible worlds",
            observations[next_obs].time));
      }
      if (options_.eager_normalization) {
        surviving *= mass;
        v.Scale(1.0 / mass);
      }
      ++next_obs;
    }
  }

  double mass_w = 0.0;
  double mass = 0.0;
  v.ForEachNonZero([&](uint32_t i, double x) {
    mass += x;
    if (i >= n) mass_w += x;
  });
  if (mass <= 0.0) {
    return util::Status::Inconsistent(
        "no possible world survives the observations");
  }

  MultiObsResult result;
  result.exists_probability = mass_w / mass;
  result.surviving_mass = options_.eager_normalization ? surviving : mass;
  std::vector<std::pair<uint32_t, double>> merged;
  v.ForEachNonZero(
      [&](uint32_t i, double x) { merged.emplace_back(i % n, x / mass); });
  USTDB_ASSIGN_OR_RETURN(result.posterior,
                         ProbVector::FromPairs(n, std::move(merged)));
  return result;
}

}  // namespace core
}  // namespace ustdb
