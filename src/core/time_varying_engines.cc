#include "core/time_varying_engines.h"

#include <cassert>

#include "core/absorbing.h"
#include "core/k_times.h"

namespace ustdb {
namespace core {

double TimeVaryingExistsForward(const markov::TimeVaryingChain& chain,
                                const QueryWindow& window,
                                const sparse::ProbVector& initial) {
  assert(initial.size() == chain.num_states());
  assert(window.region().domain_size() == chain.num_states());

  sparse::ProbVector v = initial;
  sparse::VecMatWorkspace ws;
  double hit = 0.0;
  if (window.ContainsTime(0)) hit += v.ExtractMassIn(window.region());
  const Timestamp t_end = window.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    // The transition from t-1 to t is governed by phase (t-1); window
    // steps fuse the ◆-redirection into the product's single pass. The
    // phase's transpose is fetched only once the vector is dense, so
    // sparse-support runs never force the per-phase transpose builds.
    const markov::MarkovChain& phase = chain.PhaseAt(t - 1);
    const sparse::CsrMatrix* pt =
        v.IsSparse() ? nullptr : &phase.transposed();
    if (window.ContainsTime(t)) {
      hit += ws.MultiplyAndExtract(v, phase.matrix(), window.region(), &v,
                                   pt);
    } else {
      ws.Multiply(v, phase.matrix(), &v, pt);
    }
  }
  return hit;
}

sparse::ProbVector TimeVaryingExistsStartVector(
    const markov::TimeVaryingChain& chain, const QueryWindow& window) {
  assert(window.region().domain_size() == chain.num_states());
  const uint32_t n = chain.num_states();

  sparse::ProbVector g = sparse::ProbVector::Zero(n);
  sparse::VecMatWorkspace ws;

  const Timestamp t_end = window.t_end();
  for (Timestamp t = t_end; t > 0; --t) {
    // Stepping back from t to t-1 inverts phase (t-1); the region clamp of
    // a window time is fused into the product.
    const markov::MarkovChain& phase = chain.PhaseAt(t - 1);
    if (window.ContainsTime(t)) {
      ws.MultiplyClamped(g, phase.transposed(), window.region(), &g,
                         &phase.matrix());
    } else {
      ws.Multiply(g, phase.transposed(), &g, &phase.matrix());
    }
  }
  if (window.ContainsTime(0)) {
    ClampRegionToOnes(window.region(), &g);
  }
  return g;
}

double TimeVaryingForAll(const markov::TimeVaryingChain& chain,
                         const QueryWindow& window,
                         const sparse::ProbVector& initial) {
  return 1.0 - TimeVaryingExistsForward(chain, window.WithComplementRegion(),
                                        initial);
}

std::vector<double> TimeVaryingKTimes(const markov::TimeVaryingChain& chain,
                                      const QueryWindow& window,
                                      const sparse::ProbVector& initial) {
  assert(initial.size() == chain.num_states());
  const uint32_t levels = window.num_times() + 1;
  std::vector<sparse::ProbVector> rows(
      levels, sparse::ProbVector::Zero(chain.num_states()));
  rows[0] = initial;

  KTimesShift shift(levels);  // shared count-shift; see k_times.h
  if (window.ContainsTime(0)) shift.ShiftAll(window.region(), &rows);
  sparse::VecMatWorkspace ws;
  const Timestamp t_end = window.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    const markov::MarkovChain& phase = chain.PhaseAt(t - 1);
    const bool in_window = window.ContainsTime(t);
    for (uint32_t k = 0; k < levels; ++k) {
      if (in_window) shift.slot(k)->clear();
      if (rows[k].Support() == 0) continue;
      const sparse::CsrMatrix* pt =
          rows[k].IsSparse() ? nullptr : &phase.transposed();
      if (in_window) {
        ws.MultiplyAndExtractEntries(rows[k], phase.matrix(),
                                     window.region(), &rows[k],
                                     shift.slot(k), pt);
      } else {
        ws.Multiply(rows[k], phase.matrix(), &rows[k], pt);
      }
    }
    if (in_window) shift.Reinsert(&rows);
  }

  std::vector<double> out(levels, 0.0);
  for (uint32_t k = 0; k < levels; ++k) out[k] = rows[k].Sum();
  return out;
}

}  // namespace core
}  // namespace ustdb
