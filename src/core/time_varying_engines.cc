#include "core/time_varying_engines.h"

#include <cassert>

namespace ustdb {
namespace core {

double TimeVaryingExistsForward(const markov::TimeVaryingChain& chain,
                                const QueryWindow& window,
                                const sparse::ProbVector& initial) {
  assert(initial.size() == chain.num_states());
  assert(window.region().domain_size() == chain.num_states());

  sparse::ProbVector v = initial;
  sparse::VecMatWorkspace ws;
  double hit = 0.0;
  if (window.ContainsTime(0)) hit += v.ExtractMassIn(window.region());
  const Timestamp t_end = window.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    // The transition from t-1 to t is governed by phase (t-1).
    ws.Multiply(v, chain.PhaseAt(t - 1).matrix(), &v);
    if (window.ContainsTime(t)) hit += v.ExtractMassIn(window.region());
  }
  return hit;
}

sparse::ProbVector TimeVaryingExistsStartVector(
    const markov::TimeVaryingChain& chain, const QueryWindow& window) {
  assert(window.region().domain_size() == chain.num_states());
  const uint32_t n = chain.num_states();

  sparse::ProbVector g = sparse::ProbVector::Zero(n);
  sparse::VecMatWorkspace ws;
  std::vector<std::pair<uint32_t, double>> region_ones;
  region_ones.reserve(window.region().size());
  auto clamp_region = [&]() {
    g.ExtractMassIn(window.region());
    region_ones.clear();
    for (uint32_t s : window.region()) region_ones.emplace_back(s, 1.0);
    g.AddEntries(region_ones);
  };

  const Timestamp t_end = window.t_end();
  for (Timestamp t = t_end; t > 0; --t) {
    if (window.ContainsTime(t)) clamp_region();
    // Stepping back from t to t-1 inverts phase (t-1).
    ws.Multiply(g, chain.PhaseAt(t - 1).transposed(), &g);
  }
  if (window.ContainsTime(0)) clamp_region();
  return g;
}

double TimeVaryingForAll(const markov::TimeVaryingChain& chain,
                         const QueryWindow& window,
                         const sparse::ProbVector& initial) {
  return 1.0 - TimeVaryingExistsForward(chain, window.WithComplementRegion(),
                                        initial);
}

std::vector<double> TimeVaryingKTimes(const markov::TimeVaryingChain& chain,
                                      const QueryWindow& window,
                                      const sparse::ProbVector& initial) {
  assert(initial.size() == chain.num_states());
  const uint32_t levels = window.num_times() + 1;
  std::vector<sparse::ProbVector> rows(
      levels, sparse::ProbVector::Zero(chain.num_states()));
  rows[0] = initial;

  auto shift = [&]() {
    std::vector<std::vector<std::pair<uint32_t, double>>> extracted(levels);
    for (uint32_t k = 0; k < levels; ++k) {
      extracted[k] = rows[k].ExtractEntriesIn(window.region());
    }
    for (uint32_t k = 0; k + 1 < levels; ++k) {
      rows[k + 1].AddEntries(extracted[k]);
    }
    rows[levels - 1].AddEntries(extracted[levels - 1]);
  };

  if (window.ContainsTime(0)) shift();
  sparse::VecMatWorkspace ws;
  const Timestamp t_end = window.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    for (uint32_t k = 0; k < levels; ++k) {
      if (rows[k].Support() == 0) continue;
      ws.Multiply(rows[k], chain.PhaseAt(t - 1).matrix(), &rows[k]);
    }
    if (window.ContainsTime(t)) shift();
  }

  std::vector<double> out(levels, 0.0);
  for (uint32_t k = 0; k < levels; ++k) out[k] = rows[k].Sum();
  return out;
}

}  // namespace core
}  // namespace ustdb
