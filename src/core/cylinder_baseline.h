// Copyright 2026 the ustdb authors.
//
// CylinderBaseline — the related-work comparator of Trajcevski et al.
// ([16], [17] in the paper): each trajectory is represented by the *region*
// the object may occupy at each timestamp (a 3-D cylindrical body in the
// original; here the exact reachable state set under the motion model).
// Because no distribution is kept inside the region, "only binary answers
// to queries are possible": an object certainly intersects the window,
// possibly intersects it, or certainly does not. The paper's framework
// strictly refines this with probabilities; the relationship
//
//   kNever    <=>  P∃ = 0
//   kAlways    =>  P∃ = 1      (one-way: P∃ = 1 can also arise from
//                               different worlds hitting at different times)
//   kPossibly <=>  0 < P∃
//
// is verified in tests.

#ifndef USTDB_CORE_CYLINDER_BASELINE_H_
#define USTDB_CORE_CYLINDER_BASELINE_H_

#include <vector>

#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "sparse/index_set.h"
#include "sparse/prob_vector.h"

namespace ustdb {
namespace core {

/// Three-valued answer of the region-based model.
enum class CylinderAnswer {
  kNever,     ///< no possible world intersects the window
  kPossibly,  ///< some but (provably) not all worlds intersect
  kAlways,    ///< every possible world intersects the window
};

/// \brief Region-based (Trajcevski-style) evaluation of the window query.
///
/// The reachable set R(t) is propagated exactly (support of the Markov
/// chain, ignoring probabilities — the "cylinder"). The answer is:
///  * kNever    if R(t) ∩ S□ = ∅ for every window time t;
///  * kAlways   if R(t) ⊆ S□ at some window time t (every world is inside
///              the region then);
///  * kPossibly otherwise.
class CylinderBaseline {
 public:
  /// \pre window.region().domain_size() == chain->num_states(); `chain`
  /// must outlive the baseline.
  CylinderBaseline(const markov::MarkovChain* chain, QueryWindow window);

  /// Evaluates the three-valued answer for an object whose possible
  /// locations at t = 0 are the support of `initial`.
  CylinderAnswer Evaluate(const sparse::ProbVector& initial) const;

  /// \brief The reachable state sets R(t) for t = 0..t_end for `initial`'s
  /// support (exposed for tests and for rendering the "cylinder").
  std::vector<sparse::IndexSet> ReachableSets(
      const sparse::ProbVector& initial) const;

  const QueryWindow& window() const { return window_; }

 private:
  const markov::MarkovChain* chain_;
  QueryWindow window_;
};

/// Human-readable name ("never" / "possibly" / "always").
const char* CylinderAnswerToString(CylinderAnswer answer);

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_CYLINDER_BASELINE_H_
