#include "core/database.h"

#include "util/string_util.h"

namespace ustdb {
namespace core {

ChainId Database::AddChain(markov::MarkovChain chain) {
  chains_.push_back(std::move(chain));
  by_chain_.emplace_back();
  return static_cast<ChainId>(chains_.size() - 1);
}

util::Result<ObjectId> Database::AddObject(
    ChainId chain, std::vector<Observation> observations) {
  if (chain >= chains_.size()) {
    return util::Status::NotFound(
        util::StringPrintf("chain %u does not exist", chain));
  }
  if (observations.empty()) {
    return util::Status::InvalidArgument(
        "an object needs at least one observation");
  }
  const uint32_t n = chains_[chain].num_states();
  for (size_t i = 0; i < observations.size(); ++i) {
    if (observations[i].pdf.size() != n) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "observation %zu pdf has dimension %u, chain has %u states", i,
          observations[i].pdf.size(), n));
    }
    USTDB_RETURN_NOT_OK(observations[i].pdf.Normalize());
    if (i > 0 && observations[i].time <= observations[i - 1].time) {
      return util::Status::InvalidArgument(
          "observations must have strictly increasing times");
    }
  }
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back({id, chain, std::move(observations)});
  by_chain_[chain].push_back(id);
  return id;
}

util::Result<ObjectId> Database::AddObjectAt(ChainId chain,
                                             sparse::ProbVector initial_pdf,
                                             Timestamp t) {
  std::vector<Observation> obs;
  obs.push_back({t, std::move(initial_pdf)});
  return AddObject(chain, std::move(obs));
}

}  // namespace core
}  // namespace ustdb
