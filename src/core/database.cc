#include "core/database.h"

#include <cmath>

#include "util/string_util.h"

namespace ustdb {
namespace core {

double Database::MeanRowL1Distance(const markov::MarkovChain& a,
                                   const markov::MarkovChain& b) {
  const uint32_t n = a.num_states();
  double total = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    const auto a_idx = a.matrix().RowIndices(r);
    const auto a_val = a.matrix().RowValues(r);
    const auto b_idx = b.matrix().RowIndices(r);
    const auto b_val = b.matrix().RowValues(r);
    size_t i = 0;
    size_t j = 0;
    while (i < a_idx.size() || j < b_idx.size()) {
      if (j == b_idx.size() || (i < a_idx.size() && a_idx[i] < b_idx[j])) {
        total += a_val[i++];
      } else if (i == a_idx.size() || b_idx[j] < a_idx[i]) {
        total += b_val[j++];
      } else {
        total += std::abs(a_val[i++] - b_val[j++]);
      }
    }
  }
  return n == 0 ? 0.0 : total / n;
}

namespace {

/// How many cluster leaders AddChain compares against before giving up
/// and founding a new cluster. Keeps ingestion of mutually dissimilar
/// chains linear: beyond the cap the registry degrades to extra
/// (possibly singleton) clusters, which costs pruning opportunity but
/// never correctness.
constexpr size_t kMaxLeaderScan = 256;

/// Whether MeanRowL1Distance(a, b) <= threshold, aborting the scan as
/// soon as the accumulating distance proves otherwise — for dissimilar
/// chains (the expensive case, every leader scanned) this exits after a
/// small prefix of the rows.
bool WithinMeanRowL1(const markov::MarkovChain& a,
                     const markov::MarkovChain& b, double threshold) {
  const uint32_t n = a.num_states();
  const double budget = threshold * n;
  double total = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    const auto a_idx = a.matrix().RowIndices(r);
    const auto a_val = a.matrix().RowValues(r);
    const auto b_idx = b.matrix().RowIndices(r);
    const auto b_val = b.matrix().RowValues(r);
    size_t i = 0;
    size_t j = 0;
    while (i < a_idx.size() || j < b_idx.size()) {
      if (j == b_idx.size() || (i < a_idx.size() && a_idx[i] < b_idx[j])) {
        total += a_val[i++];
      } else if (i == a_idx.size() || b_idx[j] < a_idx[i]) {
        total += b_val[j++];
      } else {
        total += std::abs(a_val[i++] - b_val[j++]);
      }
    }
    if (total > budget) return false;
  }
  return true;
}

}  // namespace

ChainId Database::AddChain(markov::MarkovChain chain) {
  const ChainId id = static_cast<ChainId>(chains_.size());
  chains_.push_back(std::move(chain));
  by_chain_.emplace_back();
  chain_epoch_.push_back(0);

  // Greedy leader clustering: join the first cluster whose leader is
  // within the radius, else found a new one. Comparing against leaders
  // only (early-aborted, scan-capped) keeps AddChain cheap and the
  // assignment stable under insertion order (a chain never migrates once
  // placed).
  const markov::MarkovChain& added = chains_[id];
  uint32_t cluster = static_cast<uint32_t>(clusters_.size());
  size_t scanned = 0;
  for (uint32_t c = 0; c < clusters_.size() && scanned < kMaxLeaderScan;
       ++c) {
    const markov::MarkovChain& leader = chains_[clusters_[c].leader];
    if (leader.num_states() != added.num_states()) continue;
    ++scanned;
    if (WithinMeanRowL1(leader, added, kChainClusterL1Threshold)) {
      cluster = c;
      break;
    }
  }
  if (cluster == clusters_.size()) {
    clusters_.push_back({id, {}});
    cluster_epoch_.push_back(0);
  }
  clusters_[cluster].members.push_back(id);
  cluster_of_.push_back(cluster);
  return id;
}

ChainId Database::AddChainToClusterOf(markov::MarkovChain chain,
                                      std::optional<ChainId> join) {
  const ChainId id = static_cast<ChainId>(chains_.size());
  chains_.push_back(std::move(chain));
  by_chain_.emplace_back();
  chain_epoch_.push_back(0);
  uint32_t cluster;
  if (join.has_value()) {
    cluster = cluster_of_[*join];
  } else {
    cluster = static_cast<uint32_t>(clusters_.size());
    clusters_.push_back({id, {}});
    cluster_epoch_.push_back(0);
  }
  clusters_[cluster].members.push_back(id);
  cluster_of_.push_back(cluster);
  return id;
}

util::Result<ObjectId> Database::AddObject(
    ChainId chain, std::vector<Observation> observations) {
  if (chain >= chains_.size()) {
    return util::Status::NotFound(
        util::StringPrintf("chain %u does not exist", chain));
  }
  if (observations.empty()) {
    return util::Status::InvalidArgument(
        "an object needs at least one observation");
  }
  const uint32_t n = chains_[chain].num_states();
  for (size_t i = 0; i < observations.size(); ++i) {
    if (observations[i].pdf.size() != n) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "observation %zu pdf has dimension %u, chain has %u states", i,
          observations[i].pdf.size(), n));
    }
    USTDB_RETURN_NOT_OK(observations[i].pdf.Normalize());
    if (i > 0 && observations[i].time <= observations[i - 1].time) {
      return util::Status::InvalidArgument(
          "observations must have strictly increasing times");
    }
  }
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back({id, chain, std::move(observations)});
  RegisterObject(id, chain);
  return id;
}

ObjectId Database::ReAddNormalizedObject(
    ChainId chain, std::vector<Observation> observations) {
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back({id, chain, std::move(observations)});
  RegisterObject(id, chain);
  return id;
}

void Database::RegisterObject(ObjectId id, ChainId chain) {
  by_chain_[chain].push_back(id);
  object_epoch_.push_back(0);
  multi_engine_->emplace_back(
      objects_[id].needs_multi_observation_engine());
}

util::Result<DataVersion> Database::AppendObservation(ObjectId id,
                                                      Observation obs) {
  return AppendObservationAtVersion(id, std::move(obs), version_ + 1);
}

util::Result<DataVersion> Database::AppendObservationAtVersion(
    ObjectId id, Observation obs, DataVersion version) {
  if (id >= objects_.size()) {
    return util::Status::NotFound(
        util::StringPrintf("object %u does not exist", id));
  }
  if (version <= version_) {
    return util::Status::InvalidArgument(
        "append version must exceed the database's current data_version");
  }
  UncertainObject& object = objects_[id];
  const uint32_t n = chains_[object.chain].num_states();
  if (obs.pdf.size() != n) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "appended pdf has dimension %u, chain has %u states",
        obs.pdf.size(), n));
  }
  USTDB_RETURN_NOT_OK(obs.pdf.Normalize());
  if (obs.time <= object.observations.back().time) {
    return util::Status::InvalidArgument(
        "observations must have strictly increasing times");
  }
  object.observations.push_back(std::move(obs));
  // Census mirror first (release): a submit-path reader that sees the
  // flag flipped plans the object for the multi-observation engine,
  // which is correct both before and after the epoch stamps land.
  (*multi_engine_)[id].store(object.needs_multi_observation_engine(),
                             std::memory_order_release);
  version_ = version;
  object_epoch_[id] = version;
  chain_epoch_[object.chain] = version;
  cluster_epoch_[cluster_of_[object.chain]] = version;
  return version;
}

util::Result<ObjectId> Database::AddObjectAt(ChainId chain,
                                             sparse::ProbVector initial_pdf,
                                             Timestamp t) {
  std::vector<Observation> obs;
  obs.push_back({t, std::move(initial_pdf)});
  return AddObject(chain, std::move(obs));
}

}  // namespace core
}  // namespace ustdb
