#include "core/threshold.h"

#include <algorithm>

#include "core/executor.h"

namespace ustdb {
namespace core {

namespace {

/// One sequential pipeline pass with the plan forced.
util::Result<QueryResult> RunThreshold(const Database& db,
                                       const QueryWindow& window, double tau,
                                       PlanChoice plan) {
  QueryExecutor executor(&db, {.num_threads = 1});
  QueryRequest request;
  request.predicate = PredicateKind::kThresholdExists;
  request.window = window;
  request.tau = tau;
  request.plan = plan;
  return executor.Run(request);
}

}  // namespace

util::Result<std::vector<ObjectProbability>> ThresholdExistsQueryBased(
    const Database& db, const QueryWindow& window, double tau) {
  USTDB_ASSIGN_OR_RETURN(
      QueryResult result,
      RunThreshold(db, window, tau, PlanChoice::kQueryBased));
  return std::move(result.probabilities);
}

util::Result<std::vector<ObjectProbability>> ThresholdExistsObjectBased(
    const Database& db, const QueryWindow& window, double tau,
    PruneStats* stats) {
  USTDB_ASSIGN_OR_RETURN(
      QueryResult result,
      RunThreshold(db, window, tau, PlanChoice::kObjectBased));
  if (stats != nullptr) {
    stats->objects_decided_early += result.stats.prune.objects_decided_early;
  }
  return std::move(result.probabilities);
}

util::Result<std::vector<ObjectProbability>> ThresholdExistsClustered(
    const Database& db, const QueryWindow& window, double tau,
    uint32_t num_clusters, PruneStats* stats) {
  if (num_clusters == 0) {
    return util::Status::InvalidArgument("need at least one cluster");
  }
  // Interval bounds assume a contiguous time range; fall back otherwise.
  const bool contiguous =
      window.t_end() - window.t_begin() + 1 == window.num_times();
  if (!contiguous) {
    return ThresholdExistsQueryBased(db, window, tau);
  }

  // Chunk chains contiguously into clusters: chains created together tend
  // to be variations of the same model in our workloads, so neighbors give
  // the tightest interval envelopes.
  const uint32_t num_chains = db.num_chains();
  num_clusters = std::min(num_clusters, num_chains);
  // Balanced split: cluster i covers [i*n/k, (i+1)*n/k) — contiguous and
  // never empty for k <= n.
  std::vector<std::vector<ChainId>> clusters(num_clusters);
  for (uint32_t i = 0; i < num_clusters; ++i) {
    const uint32_t begin =
        static_cast<uint32_t>(uint64_t{i} * num_chains / num_clusters);
    const uint32_t end =
        static_cast<uint32_t>(uint64_t{i + 1} * num_chains / num_clusters);
    for (ChainId c = begin; c < end; ++c) clusters[i].push_back(c);
  }
  if (stats != nullptr) stats->clusters_total = num_clusters;

  // Pass 1 — interval bounds decide what needs an exact evaluation:
  // sure hits still need their exact probability for the output, undecided
  // objects need refinement, sure drops need nothing.
  std::vector<ObjectId> sure_hits;
  std::vector<ObjectId> refine;
  for (const std::vector<ChainId>& cluster : clusters) {
    std::vector<const markov::MarkovChain*> members;
    for (ChainId c : cluster) members.push_back(&db.chain(c));
    if (members.empty()) continue;
    USTDB_ASSIGN_OR_RETURN(markov::IntervalMarkovChain env,
                           markov::IntervalMarkovChain::FromChains(members));
    const std::vector<markov::ProbBound> bounds =
        env.BoundExists(window.region(), window.t_begin(), window.t_end());

    bool all_decided = true;
    for (ChainId c : cluster) {
      for (ObjectId id : db.objects_by_chain()[c]) {
        const UncertainObject& obj = db.object(id);
        bool needs_refine = true;
        if (obj.single_observation() && obj.observations.front().time == 0) {
          double lo = 0.0;
          double hi = 0.0;
          obj.initial_pdf().ForEachNonZero([&](uint32_t s, double p) {
            lo += p * bounds[s].lo;
            hi += p * bounds[s].hi;
          });
          if (hi < tau) {
            needs_refine = false;  // true drop, no output
          } else if (lo >= tau) {
            sure_hits.push_back(id);  // qualifies; exact value still needed
            needs_refine = false;
          }
        }
        if (needs_refine) {
          all_decided = false;
          if (stats != nullptr) ++stats->objects_refined;
          refine.push_back(id);
        }
      }
    }
    if (stats != nullptr && all_decided) ++stats->clusters_pruned;
  }

  // Pass 2 — one batched pipeline run over exactly the objects the bounds
  // could not drop. Results come back in filter order (sure hits first,
  // then refine candidates): sure hits always qualify, the rest compare.
  std::vector<ObjectProbability> out;
  const size_t num_sure = sure_hits.size();
  std::vector<ObjectId> exact_ids = std::move(sure_hits);
  exact_ids.insert(exact_ids.end(), refine.begin(), refine.end());
  if (!exact_ids.empty()) {
    QueryExecutor executor(&db, {.num_threads = 1});
    QueryRequest request;
    request.predicate = PredicateKind::kExists;
    request.window = window;
    request.plan = PlanChoice::kQueryBased;
    request.object_filter = std::move(exact_ids);
    USTDB_ASSIGN_OR_RETURN(QueryResult result, executor.Run(request));
    for (size_t j = 0; j < result.probabilities.size(); ++j) {
      if (j < num_sure || result.probabilities[j].probability >= tau) {
        out.push_back(result.probabilities[j]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectProbability& a, const ObjectProbability& b) {
              return a.id < b.id;
            });
  return out;
}

util::Result<std::vector<ObjectProbability>> TopKExists(
    const Database& db, const QueryWindow& window, uint32_t k) {
  QueryExecutor executor(&db, {.num_threads = 1});
  QueryRequest request;
  request.predicate = PredicateKind::kTopKExists;
  request.window = window;
  request.k = k;
  request.plan = PlanChoice::kQueryBased;
  USTDB_ASSIGN_OR_RETURN(QueryResult result, executor.Run(request));
  return std::move(result.probabilities);
}

}  // namespace core
}  // namespace ustdb
