#include "core/threshold.h"

#include <algorithm>
#include <map>

#include "core/multi_observation.h"

namespace ustdb {
namespace core {

namespace {

/// Exact P∃ for one object, choosing the right engine for its observation
/// count / first-observation time.
util::Result<double> ExactExists(const Database& db,
                                 const UncertainObject& obj,
                                 const QueryWindow& window,
                                 std::map<ChainId, QueryBasedEngine>* qb_cache) {
  if (obj.single_observation() && obj.observations.front().time == 0) {
    auto it = qb_cache->find(obj.chain);
    if (it == qb_cache->end()) {
      it = qb_cache
               ->emplace(std::piecewise_construct,
                         std::forward_as_tuple(obj.chain),
                         std::forward_as_tuple(&db.chain(obj.chain), window))
               .first;
    }
    return it->second.ExistsProbability(obj.initial_pdf());
  }
  MultiObservationEngine engine(&db.chain(obj.chain), window);
  USTDB_ASSIGN_OR_RETURN(MultiObsResult r, engine.Evaluate(obj.observations));
  return r.exists_probability;
}

}  // namespace

util::Result<std::vector<ObjectProbability>> ThresholdExistsQueryBased(
    const Database& db, const QueryWindow& window, double tau) {
  std::vector<ObjectProbability> out;
  std::map<ChainId, QueryBasedEngine> qb_cache;
  for (const UncertainObject& obj : db.objects()) {
    USTDB_ASSIGN_OR_RETURN(double p,
                           ExactExists(db, obj, window, &qb_cache));
    if (p >= tau) out.push_back({obj.id, p});
  }
  return out;
}

util::Result<std::vector<ObjectProbability>> ThresholdExistsObjectBased(
    const Database& db, const QueryWindow& window, double tau,
    PruneStats* stats) {
  std::vector<ObjectProbability> out;
  std::map<ChainId, ObjectBasedEngine> ob_cache;
  std::map<ChainId, QueryBasedEngine> qb_cache;
  for (const UncertainObject& obj : db.objects()) {
    if (!obj.single_observation() || obj.observations.front().time != 0) {
      USTDB_ASSIGN_OR_RETURN(double p,
                             ExactExists(db, obj, window, &qb_cache));
      if (p >= tau) out.push_back({obj.id, p});
      continue;
    }
    auto it = ob_cache.find(obj.chain);
    if (it == ob_cache.end()) {
      it = ob_cache
               .emplace(std::piecewise_construct,
                        std::forward_as_tuple(obj.chain),
                        std::forward_as_tuple(&db.chain(obj.chain), window,
                                              ObjectBasedOptions{}))
               .first;
    }
    ObRunStats run;
    const ThresholdDecision d =
        it->second.ExistsDecision(obj.initial_pdf(), tau, &run);
    if (stats != nullptr && run.early_terminated) {
      ++stats->objects_decided_early;
    }
    if (d == ThresholdDecision::kYes) {
      // The decision run stops at τ; re-run for the exact probability.
      out.push_back({obj.id, it->second.ExistsProbability(obj.initial_pdf())});
    }
  }
  return out;
}

util::Result<std::vector<ObjectProbability>> ThresholdExistsClustered(
    const Database& db, const QueryWindow& window, double tau,
    uint32_t num_clusters, PruneStats* stats) {
  if (num_clusters == 0) {
    return util::Status::InvalidArgument("need at least one cluster");
  }
  // Interval bounds assume a contiguous time range; fall back otherwise.
  const bool contiguous =
      window.t_end() - window.t_begin() + 1 == window.num_times();
  if (!contiguous) {
    return ThresholdExistsQueryBased(db, window, tau);
  }

  // Chunk chains contiguously into clusters (chains created together tend
  // to be variations of the same model in our workloads).
  const uint32_t num_chains = db.num_chains();
  num_clusters = std::min(num_clusters, num_chains);
  std::vector<std::vector<ChainId>> clusters(num_clusters);
  for (ChainId c = 0; c < num_chains; ++c) {
    clusters[c % num_clusters].push_back(c);
  }
  if (stats != nullptr) stats->clusters_total = num_clusters;

  std::vector<ObjectProbability> out;
  std::map<ChainId, QueryBasedEngine> qb_cache;
  for (const std::vector<ChainId>& cluster : clusters) {
    std::vector<const markov::MarkovChain*> members;
    for (ChainId c : cluster) members.push_back(&db.chain(c));
    if (members.empty()) continue;
    USTDB_ASSIGN_OR_RETURN(markov::IntervalMarkovChain env,
                           markov::IntervalMarkovChain::FromChains(members));
    const std::vector<markov::ProbBound> bounds =
        env.BoundExists(window.region(), window.t_begin(), window.t_end());

    bool all_decided = true;
    for (ChainId c : cluster) {
      for (ObjectId id : db.objects_by_chain()[c]) {
        const UncertainObject& obj = db.object(id);
        bool needs_refine = true;
        if (obj.single_observation() && obj.observations.front().time == 0) {
          double lo = 0.0;
          double hi = 0.0;
          obj.initial_pdf().ForEachNonZero([&](uint32_t s, double p) {
            lo += p * bounds[s].lo;
            hi += p * bounds[s].hi;
          });
          if (hi < tau) {
            needs_refine = false;  // true drop, no output
          } else if (lo >= tau) {
            // Qualifies for sure; still needs its exact probability.
            USTDB_ASSIGN_OR_RETURN(double p,
                                   ExactExists(db, obj, window, &qb_cache));
            out.push_back({obj.id, p});
            needs_refine = false;
          }
        }
        if (needs_refine) {
          all_decided = false;
          if (stats != nullptr) ++stats->objects_refined;
          USTDB_ASSIGN_OR_RETURN(double p,
                                 ExactExists(db, obj, window, &qb_cache));
          if (p >= tau) out.push_back({obj.id, p});
        }
      }
    }
    if (stats != nullptr && all_decided) ++stats->clusters_pruned;
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectProbability& a, const ObjectProbability& b) {
              return a.id < b.id;
            });
  return out;
}

util::Result<std::vector<ObjectProbability>> TopKExists(
    const Database& db, const QueryWindow& window, uint32_t k) {
  std::vector<ObjectProbability> all;
  all.reserve(db.num_objects());
  std::map<ChainId, QueryBasedEngine> qb_cache;
  for (const UncertainObject& obj : db.objects()) {
    USTDB_ASSIGN_OR_RETURN(double p, ExactExists(db, obj, window, &qb_cache));
    all.push_back({obj.id, p});
  }
  const uint32_t take = std::min<uint32_t>(k, db.num_objects());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const ObjectProbability& a, const ObjectProbability& b) {
                      if (a.probability != b.probability) {
                        return a.probability > b.probability;
                      }
                      return a.id < b.id;
                    });
  all.resize(take);
  return all;
}

}  // namespace core
}  // namespace ustdb
