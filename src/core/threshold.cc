#include "core/threshold.h"

#include "core/executor.h"

namespace ustdb {
namespace core {

namespace {

/// One sequential pipeline pass with the plan forced.
util::Result<QueryResult> RunThreshold(const Database& db,
                                       const QueryWindow& window, double tau,
                                       PlanChoice plan) {
  QueryExecutor executor(&db, {.num_threads = 1});
  QueryRequest request;
  request.predicate = PredicateKind::kThresholdExists;
  request.window = window;
  request.tau = tau;
  request.plan = plan;
  return executor.Run(request);
}

}  // namespace

util::Result<std::vector<ObjectProbability>> ThresholdExistsQueryBased(
    const Database& db, const QueryWindow& window, double tau) {
  USTDB_ASSIGN_OR_RETURN(
      QueryResult result,
      RunThreshold(db, window, tau, PlanChoice::kQueryBased));
  return std::move(result.probabilities);
}

util::Result<std::vector<ObjectProbability>> ThresholdExistsObjectBased(
    const Database& db, const QueryWindow& window, double tau,
    PruneStats* stats) {
  USTDB_ASSIGN_OR_RETURN(
      QueryResult result,
      RunThreshold(db, window, tau, PlanChoice::kObjectBased));
  if (stats != nullptr) {
    stats->objects_decided_early += result.stats.prune.objects_decided_early;
  }
  return std::move(result.probabilities);
}

util::Result<std::vector<ObjectProbability>> ThresholdExistsClustered(
    const Database& db, const QueryWindow& window, double tau,
    uint32_t num_clusters, PruneStats* stats) {
  if (num_clusters == 0) {
    return util::Status::InvalidArgument("need at least one cluster");
  }
  // The Section V-C layer now lives inside the pipeline: force the
  // kBoundsThenRefine plan and let the executor bound the database's own
  // chain clusters (Database::chain_clusters — similarity-driven, so
  // `num_clusters` no longer dictates the grouping and is only
  // validated). An ineligible window falls back to per-chain planning
  // inside the executor and reports it via PruneStats::bound_fallbacks.
  USTDB_ASSIGN_OR_RETURN(
      QueryResult result,
      RunThreshold(db, window, tau, PlanChoice::kBoundsThenRefine));
  if (stats != nullptr) {
    const PruneStats& prune = result.stats.prune;
    stats->clusters_total += prune.clusters_total;
    stats->clusters_bounded += prune.clusters_bounded;
    stats->clusters_pruned += prune.clusters_pruned;
    stats->clusters_refined += prune.clusters_refined;
    stats->objects_decided_by_bounds += prune.objects_decided_by_bounds;
    stats->objects_refined += prune.objects_refined;
    stats->objects_decided_early += prune.objects_decided_early;
    stats->bound_fallbacks += prune.bound_fallbacks;
  }
  return std::move(result.probabilities);
}

util::Result<std::vector<ObjectProbability>> TopKExists(
    const Database& db, const QueryWindow& window, uint32_t k) {
  QueryExecutor executor(&db, {.num_threads = 1});
  QueryRequest request;
  request.predicate = PredicateKind::kTopKExists;
  request.window = window;
  request.k = k;
  request.plan = PlanChoice::kQueryBased;
  USTDB_ASSIGN_OR_RETURN(QueryResult result, executor.Run(request));
  return std::move(result.probabilities);
}

}  // namespace core
}  // namespace ustdb
