// Copyright 2026 the ustdb authors.
//
// Threshold and top-k PST∃Q over a whole database, with the pruning layers
// the paper describes: query-based amortization per chain class, early
// terminated object-based refinement, and interval-Markov-chain cluster
// pruning for databases with many distinct chains (Section V-C).

#ifndef USTDB_CORE_THRESHOLD_H_
#define USTDB_CORE_THRESHOLD_H_

#include <vector>

#include "core/database.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "core/query_window.h"
#include "markov/interval_chain.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// Per-object query answer.
struct ObjectProbability {
  ObjectId id = 0;
  double probability = 0.0;

  bool operator==(const ObjectProbability&) const = default;
};

/// Statistics describing how much work pruning avoided.
struct PruneStats {
  uint32_t clusters_total = 0;
  uint32_t clusters_pruned = 0;   ///< decided wholesale by interval bounds
  uint32_t objects_refined = 0;   ///< needed an individual evaluation
  uint32_t objects_decided_early = 0;  ///< OB runs cut short by τ-decision
};

/// \brief Returns the ids of all single-observation objects with
/// P∃(o, S□, T□) >= tau, ascending by id.
///
/// Strategy: one query-based backward pass per chain class, then one dot
/// product per object — the paper's preferred plan when classes are few.
util::Result<std::vector<ObjectProbability>> ThresholdExistsQueryBased(
    const Database& db, const QueryWindow& window, double tau);

/// \brief Same result via per-object object-based evaluation with early
/// τ-termination (true hit / true drop cuts), the plan of choice when every
/// object follows its own chain. `stats` (optional) reports early stops.
util::Result<std::vector<ObjectProbability>> ThresholdExistsObjectBased(
    const Database& db, const QueryWindow& window, double tau,
    PruneStats* stats = nullptr);

/// \brief Section V-C cluster pruning: groups chains into `num_clusters`
/// clusters (round-robin over similarity order), bounds every cluster with
/// an IntervalMarkovChain, decides whole clusters whose [lo, hi] bound does
/// not straddle tau, and refines the rest object-by-object.
/// Requires a contiguous window time range (uses [t_begin, t_end]).
util::Result<std::vector<ObjectProbability>> ThresholdExistsClustered(
    const Database& db, const QueryWindow& window, double tau,
    uint32_t num_clusters, PruneStats* stats = nullptr);

/// \brief The k objects with the highest P∃ (ties broken by id), descending
/// probability. Uses the query-based plan.
util::Result<std::vector<ObjectProbability>> TopKExists(
    const Database& db, const QueryWindow& window, uint32_t k);

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_THRESHOLD_H_
