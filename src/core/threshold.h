// Copyright 2026 the ustdb authors.
//
// Threshold and top-k PST∃Q facades. The plan-specific entry points are
// thin wrappers over the planner/executor pipeline (executor.h) with the
// plan forced; ThresholdExistsClustered contributes the one layer the
// executor does not own — Section V-C's interval-Markov-chain cluster
// bounds — and delegates every exact evaluation to the pipeline.

#ifndef USTDB_CORE_THRESHOLD_H_
#define USTDB_CORE_THRESHOLD_H_

#include <vector>

#include "core/database.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "core/query_request.h"
#include "core/query_window.h"
#include "markov/interval_chain.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// \brief Returns the ids of all objects with P∃(o, S□, T□) >= tau,
/// ascending by id.
/// \deprecated Prefer QueryExecutor::Run with kThresholdExists.
///
/// Strategy: one query-based backward pass per chain class, then one dot
/// product per object — the paper's preferred plan when classes are few.
util::Result<std::vector<ObjectProbability>> ThresholdExistsQueryBased(
    const Database& db, const QueryWindow& window, double tau);

/// \brief Same result via per-object object-based evaluation with early
/// τ-termination (true hit / true drop cuts), the plan of choice when every
/// object follows its own chain. `stats` (optional) reports early stops.
/// \deprecated Prefer QueryExecutor::Run with kThresholdExists.
util::Result<std::vector<ObjectProbability>> ThresholdExistsObjectBased(
    const Database& db, const QueryWindow& window, double tau,
    PruneStats* stats = nullptr);

/// \brief Section V-C cluster pruning: groups chains into `num_clusters`
/// contiguous clusters (in creation order), bounds every cluster with
/// an IntervalMarkovChain, decides whole clusters whose [lo, hi] bound does
/// not straddle tau, and refines the rest object-by-object through the
/// executor pipeline.
/// Requires a contiguous window time range (uses [t_begin, t_end]).
util::Result<std::vector<ObjectProbability>> ThresholdExistsClustered(
    const Database& db, const QueryWindow& window, double tau,
    uint32_t num_clusters, PruneStats* stats = nullptr);

/// \brief The k objects with the highest P∃ (ties broken by id), descending
/// probability. Uses the query-based plan.
/// \deprecated Prefer QueryExecutor::Run with kTopKExists.
util::Result<std::vector<ObjectProbability>> TopKExists(
    const Database& db, const QueryWindow& window, uint32_t k);

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_THRESHOLD_H_
