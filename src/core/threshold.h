// Copyright 2026 the ustdb authors.
//
// Threshold and top-k PST∃Q facades: thin wrappers over the
// planner/executor pipeline (executor.h) with the plan forced. Section
// V-C's interval-Markov-chain cluster bounds are a first-class executor
// plan (PlanChoice::kBoundsThenRefine) since the cluster-pruning fold-in;
// ThresholdExistsClustered merely forces that plan.

#ifndef USTDB_CORE_THRESHOLD_H_
#define USTDB_CORE_THRESHOLD_H_

#include <vector>

#include "core/database.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "core/query_request.h"
#include "core/query_window.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// \brief Returns the ids of all objects with P∃(o, S□, T□) >= tau,
/// ascending by id.
/// \deprecated Prefer QueryExecutor::Run with kThresholdExists.
///
/// Strategy: one query-based backward pass per chain class, then one dot
/// product per object — the paper's preferred plan when classes are few.
util::Result<std::vector<ObjectProbability>> ThresholdExistsQueryBased(
    const Database& db, const QueryWindow& window, double tau);

/// \brief Same result via per-object object-based evaluation with early
/// τ-termination (true hit / true drop cuts), the plan of choice when every
/// object follows its own chain. `stats` (optional) reports early stops.
/// \deprecated Prefer QueryExecutor::Run with kThresholdExists.
util::Result<std::vector<ObjectProbability>> ThresholdExistsObjectBased(
    const Database& db, const QueryWindow& window, double tau,
    PruneStats* stats = nullptr);

/// \brief Section V-C cluster pruning via the pipeline's kBoundsThenRefine
/// plan: bounds every chain cluster of the database's similarity registry
/// (Database::chain_clusters) with a cached IntervalMarkovChain envelope,
/// drops objects whose upper bound falls below tau, and refines the rest
/// through the executor. Windows without a contiguous time range fall
/// back to per-chain plans (counted in `stats` as bound_fallbacks).
/// \deprecated Prefer QueryExecutor::Run with kThresholdExists — the
/// planner chooses the bound pass cost-based under PlanChoice::kAuto.
/// \param db the database to query.
/// \param window the query window Q□.
/// \param tau the qualification threshold on P∃.
/// \param num_clusters legacy knob, only validated (must be >= 1): the
///        similarity registry now dictates the clustering.
/// \param stats accumulates PruneStats counters when non-null.
util::Result<std::vector<ObjectProbability>> ThresholdExistsClustered(
    const Database& db, const QueryWindow& window, double tau,
    uint32_t num_clusters, PruneStats* stats = nullptr);

/// \brief The k objects with the highest P∃ (ties broken by id), descending
/// probability. Uses the query-based plan.
/// \deprecated Prefer QueryExecutor::Run with kTopKExists.
util::Result<std::vector<ObjectProbability>> TopKExists(
    const Database& db, const QueryWindow& window, uint32_t k);

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_THRESHOLD_H_
