#include "core/shard_router.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "util/string_util.h"

namespace ustdb {
namespace core {

namespace {

/// Load contribution of one object of `chain`: the transition-matrix nnz,
/// the factor both evaluation plans' pass costs scale with.
uint64_t ChainWeight(const Database& db, ChainId chain) {
  return static_cast<uint64_t>(db.chain(chain).matrix().nnz());
}

}  // namespace

ShardedDatabase::ShardedDatabase(ShardingOptions options)
    : options_(options) {
  shards_.resize(ResolveNumShards(options.num_shards));
}

uint32_t ShardedDatabase::ResolveNumShards(uint32_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("USTDB_SHARDS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 && value <= 4096) {
      return static_cast<uint32_t>(value);
    }
  }
  return 1;
}

ChainId ShardedDatabase::AddChain(markov::MarkovChain chain) {
  // The routing db runs the real greedy similarity scan, so its registry
  // (and every ChainId) is bit-identical to the unsharded pipeline's.
  const ChainId global = routing_db_.AddChain(std::move(chain));
  const uint32_t cluster = routing_db_.cluster_of(global);

  uint32_t target;
  if (cluster == cluster_shard_.size()) {
    // New cluster: found it on the least loaded shard.
    target = 0;
    for (uint32_t s = 1; s < num_shards(); ++s) {
      if (shards_[s].load < shards_[target].load) target = s;
    }
    cluster_shard_.push_back(target);
  } else {
    // Existing cluster: co-location is the invariant every cross-shard
    // guarantee rests on (bound passes never straddle shards).
    target = cluster_shard_[cluster];
  }

  chain_shard_.push_back(target);
  chain_local_.push_back(0);  // filled by PlaceChain
  PlaceChain(target, global);
  return global;
}

void ShardedDatabase::PlaceChain(uint32_t s, ChainId global_chain) {
  Shard& shard = shards_[s];
  const uint32_t cluster = routing_db_.cluster_of(global_chain);
  const ChainCluster& info = routing_db_.chain_clusters()[cluster];
  // Members are ascending, so the leader (front) is already local unless
  // this chain IS the leader founding the cluster.
  std::optional<ChainId> join;
  if (info.members.front() != global_chain) {
    join = chain_local_[info.members.front()];
  }
  const ChainId local = shard.db.AddChainToClusterOf(
      markov::MarkovChain(routing_db_.chain(global_chain)), join);
  chain_local_[global_chain] = local;
  shard.global_chains.push_back(global_chain);
}

util::Result<ObjectId> ShardedDatabase::AddObject(
    ChainId chain, std::vector<Observation> observations) {
  // Replicate the unsharded error (with the *global* id) before routing:
  // the shard Database would otherwise report a local id.
  if (chain >= num_chains()) {
    return util::Status::NotFound(
        util::StringPrintf("chain %u does not exist", chain));
  }
  const uint32_t s = chain_shard_[chain];
  Shard& shard = shards_[s];
  ObjectId local;
  USTDB_ASSIGN_OR_RETURN(
      local, shard.db.AddObject(chain_local_[chain], std::move(observations)));
  const ObjectId global = static_cast<ObjectId>(object_shard_.size());
  object_shard_.push_back(s);
  object_local_.push_back(local);
  shard.global_objects.push_back(global);
  shard.load += ChainWeight(routing_db_, chain);
  MaybeRebalance();
  return global;
}

util::Result<ObjectId> ShardedDatabase::AddObjectAt(
    ChainId chain, sparse::ProbVector initial_pdf, Timestamp t) {
  std::vector<Observation> obs;
  obs.push_back({t, std::move(initial_pdf)});
  return AddObject(chain, std::move(obs));
}

util::Result<DataVersion> ShardedDatabase::AppendObservation(
    ObjectId id, Observation obs) {
  if (id >= object_shard_.size()) {
    return util::Status::NotFound(
        util::StringPrintf("object %u does not exist", id));
  }
  const uint32_t s = object_shard_[id];
  const DataVersion version =
      version_->fetch_add(1, std::memory_order_acq_rel) + 1;
  return shards_[s].db.AppendObservationAtVersion(object_local_[id],
                                                  std::move(obs), version);
}

void ShardedDatabase::MaybeRebalance() {
  if (num_shards() < 2) return;
  uint64_t total = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    total += shards_[s].load;
    if (shards_[s].load > shards_[src].load) src = s;
    if (shards_[s].load < shards_[dst].load) dst = s;
  }
  if (total == 0 || src == dst) return;
  const double ideal = static_cast<double>(total) / num_shards();
  const double factor = std::max(1.0, options_.load_factor);
  const uint64_t src_load = shards_[src].load;
  const uint64_t dst_load = shards_[dst].load;
  if (static_cast<double>(src_load) <= factor * ideal) return;

  // Per-cluster load resident on the overloaded shard.
  std::map<uint32_t, uint64_t> cluster_load;
  const Shard& shard = shards_[src];
  for (ObjectId local = 0; local < shard.db.num_objects(); ++local) {
    const ChainId global_chain =
        shard.global_chains[shard.db.object(local).chain];
    cluster_load[routing_db_.cluster_of(global_chain)] +=
        ChainWeight(routing_db_, global_chain);
  }

  // Pick the cluster whose weight lands closest to half the load gap —
  // the move that minimizes max(src - w, dst + w) — requiring a strict
  // improvement so a shard holding one giant cluster stays put.
  const uint64_t half_gap = (src_load - dst_load) / 2;
  bool found = false;
  uint32_t best_cluster = 0;
  uint64_t best_distance = 0;
  for (const auto& [cluster, weight] : cluster_load) {
    if (weight == 0 || dst_load + weight >= src_load) continue;
    const uint64_t distance =
        weight > half_gap ? weight - half_gap : half_gap - weight;
    if (!found || distance < best_distance) {
      found = true;
      best_cluster = cluster;
      best_distance = distance;
    }
  }
  if (!found) return;

  // Snapshot both shards' objects (the rebuild discards their Databases),
  // flip the membership maps, and rebuild. Global ids never change.
  std::vector<ObjectSnapshot> snapshot;
  for (uint32_t s : {src, dst}) {
    const Shard& sh = shards_[s];
    for (ObjectId local = 0; local < sh.db.num_objects(); ++local) {
      const UncertainObject& obj = sh.db.object(local);
      snapshot.push_back({sh.global_objects[local],
                          sh.global_chains[obj.chain], obj.observations});
    }
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const ObjectSnapshot& a, const ObjectSnapshot& b) {
              return a.global < b.global;
            });
  for (ChainId member :
       routing_db_.chain_clusters()[best_cluster].members) {
    chain_shard_[member] = dst;
  }
  for (const ObjectSnapshot& obj : snapshot) {
    if (routing_db_.cluster_of(obj.chain) == best_cluster) {
      object_shard_[obj.global] = dst;
    }
  }
  cluster_shard_[best_cluster] = dst;
  RebuildShard(src, snapshot);
  RebuildShard(dst, snapshot);
  ++rebalances_;
  if (rebalance_listener_) rebalance_listener_(src, dst);
}

void ShardedDatabase::RebuildShard(
    uint32_t s, const std::vector<ObjectSnapshot>& snapshot) {
  shards_[s] = Shard{};
  for (ChainId g = 0; g < num_chains(); ++g) {
    if (chain_shard_[g] == s) PlaceChain(s, g);
  }
  Shard& shard = shards_[s];
  for (const ObjectSnapshot& obj : snapshot) {
    if (object_shard_[obj.global] != s) continue;
    // Bit-exact reinsertion: these observations already passed AddObject
    // once, and running Normalize() again would perturb their low bits
    // (it scales by 1/Sum()), breaking result parity with the unsharded
    // pipeline after a migration.
    const ObjectId local = shard.db.ReAddNormalizedObject(
        chain_local_[obj.chain], obj.observations);
    object_local_[obj.global] = local;
    shard.global_objects.push_back(obj.global);
    shard.load += ChainWeight(routing_db_, obj.chain);
  }
}

}  // namespace core
}  // namespace ustdb
