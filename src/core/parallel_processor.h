// Copyright 2026 the ustdb authors.
//
// Multi-threaded whole-database PST∃Q — a thin wrapper over the
// planner/executor pipeline (executor.h) with the plan forced. The paper
// runs single-threaded MATLAB; object-level parallelism is the obvious
// systems extension because both plans are embarrassingly parallel across
// objects: OB runs each object independently, and QB's shared backward
// vector is read-only after construction. Results are bit-identical to the
// sequential engines (tested) because the per-object computations do not
// interact.

#ifndef USTDB_CORE_PARALLEL_PROCESSOR_H_
#define USTDB_CORE_PARALLEL_PROCESSOR_H_

#include <vector>

#include "core/processor.h"
#include "core/threshold.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// Options for the parallel evaluation.
struct ParallelOptions {
  Plan plan = Plan::kQueryBased;
  /// 0 = one thread per hardware context.
  unsigned num_threads = 0;
};

/// \brief PST∃Q over every object of `db`, parallelized across objects.
/// \deprecated Prefer QueryExecutor::Run, which parallelizes every
/// predicate and adds plan auto-selection plus engine caching.
/// Restrictions: all objects must be single-observation at t = 0 (the
/// Section V setting the paper parallelizes trivially); multi-observation
/// objects cause kUnimplemented — run them through QueryProcessor instead.
util::Result<std::vector<ObjectProbability>> ParallelExists(
    const Database& db, const QueryWindow& window,
    const ParallelOptions& options = {});

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_PARALLEL_PROCESSOR_H_
