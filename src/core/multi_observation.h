// Copyright 2026 the ustdb authors.
//
// MultiObservationEngine — Section VI: PST∃Q given an arbitrary number of
// (mutually independent) observations of the same object, some of which may
// lie after the query window ("time-interpolation").
//
// Worlds which have already hit the window can no longer be collapsed into
// one absorbing state — their current location affects the probability of
// later observations — so the state space is doubled: s_i (not yet hit) and
// s_i◾ (hit, currently at s_i). At each observation time the joint vector is
// conditioned on the observation by an elementwise product (Lemma 1);
// because conditioning is a pure rescaling, the engine defers normalization
// until the end (P_total = P(B) / (P(B) + P(C)), Equation 1) and the
// deferred and eager variants agree (tested).

#ifndef USTDB_CORE_MULTI_OBSERVATION_H_
#define USTDB_CORE_MULTI_OBSERVATION_H_

#include <vector>

#include "core/absorbing.h"
#include "core/object_based.h"
#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// \brief One observation of an object: a pdf over S at a timestamp.
/// An exact observation is a delta distribution; an uncertain one spreads
/// mass over several states (the paper's "object spread").
struct Observation {
  Timestamp time = 0;
  sparse::ProbVector pdf;
};

/// Tuning knobs for the multi-observation engine.
struct MultiObservationOptions {
  MatrixMode mode = MatrixMode::kImplicit;
  /// If true, renormalize after every observation (the paper's Lemma 1
  /// presentation). If false, normalize once at the end — numerically
  /// equivalent, fewer passes. Both paths are kept for the equivalence test.
  bool eager_normalization = false;
};

/// Posterior summary produced by a multi-observation run.
struct MultiObsResult {
  /// P∃(o, S□, T□) conditioned on all observations — the fraction of still-
  /// possible worlds that intersect the window (Equation 1).
  double exists_probability = 0.0;
  /// Posterior location distribution at the final processed timestamp
  /// (hit and not-hit parts merged), normalized.
  sparse::ProbVector posterior;
  /// Unnormalized surviving mass P(B) + P(C); 1 if no conditioning occurred.
  /// A small value means the observations were nearly contradictory.
  double surviving_mass = 0.0;
};

/// \brief Evaluates PST∃Q under multiple observations for one chain/window.
class MultiObservationEngine {
 public:
  /// \pre window.region().domain_size() == chain->num_states(); `chain`
  /// must outlive the engine.
  MultiObservationEngine(const markov::MarkovChain* chain, QueryWindow window,
                         MultiObservationOptions options = {});

  /// \brief Runs the doubled-state forward pass across all observations.
  ///
  /// \param observations at least one; will be processed in time order
  ///        (must be sorted ascending by time, distinct times; pdfs must
  ///        have dimension |S|). The earliest observation initializes the
  ///        pass. Fails with kInconsistent if the observations rule out
  ///        every possible world.
  util::Result<MultiObsResult> Evaluate(
      const std::vector<Observation>& observations) const;

  const QueryWindow& window() const { return window_; }

 private:
  util::Result<MultiObsResult> RunImplicit(
      const std::vector<Observation>& observations) const;
  util::Result<MultiObsResult> RunExplicit(
      const std::vector<Observation>& observations) const;

  util::Status ValidateObservations(
      const std::vector<Observation>& observations) const;

  const markov::MarkovChain* chain_;
  QueryWindow window_;
  MultiObservationOptions options_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_MULTI_OBSERVATION_H_
