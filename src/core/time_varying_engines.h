// Copyright 2026 the ustdb authors.
//
// PST∃Q / PST∀Q / PSTkQ over inhomogeneous (time-varying) Markov chains —
// the generalization the paper's Definition 5 permits but its engines do
// not exercise. Forward (object-based) processing folds window mass after
// each phase-specific transition; backward (query-based) processing walks
// the transposed phase matrices in reverse schedule order. With a period-1
// chain every function reduces exactly to the homogeneous engines (tested).

#ifndef USTDB_CORE_TIME_VARYING_ENGINES_H_
#define USTDB_CORE_TIME_VARYING_ENGINES_H_

#include <vector>

#include "core/query_window.h"
#include "markov/time_varying_chain.h"
#include "sparse/prob_vector.h"

namespace ustdb {
namespace core {

/// \brief Forward (object-based) PST∃Q on a time-varying chain.
/// \pre initial.size() == chain.num_states() == window region domain.
double TimeVaryingExistsForward(const markov::TimeVaryingChain& chain,
                                const QueryWindow& window,
                                const sparse::ProbVector& initial);

/// \brief Backward (query-based) PST∃Q start vector at t = 0: entry s is
/// the probability that an object starting at s satisfies the query. The
/// vector serves every object of the chain, as in Section V-B; note that
/// unlike the homogeneous case it is specific to the window's *absolute*
/// times (the schedule phase matters).
sparse::ProbVector TimeVaryingExistsStartVector(
    const markov::TimeVaryingChain& chain, const QueryWindow& window);

/// \brief PST∀Q on a time-varying chain (complement reduction).
double TimeVaryingForAll(const markov::TimeVaryingChain& chain,
                         const QueryWindow& window,
                         const sparse::ProbVector& initial);

/// \brief PSTkQ distribution (size |T□|+1) on a time-varying chain, via
/// the C(t) shift algorithm of Section VII.
std::vector<double> TimeVaryingKTimes(const markov::TimeVaryingChain& chain,
                                      const QueryWindow& window,
                                      const sparse::ProbVector& initial);

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_TIME_VARYING_ENGINES_H_
