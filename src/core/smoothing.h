// Copyright 2026 the ustdb authors.
//
// Trajectory inference between observations. The paper's introduction
// motivates the model with exactly this task: "for timestamps where
// locations are not sampled, we have to infer the whereabouts of the
// object" — interpolation when observations bracket the timestamp,
// extrapolation beyond the last one. This module provides the two classic
// inference primitives on the paper's Markov model:
//
//  * SmoothedMarginals — forward–backward: the posterior location
//    distribution P(o(t) = s | all observations) for every t in the
//    requested horizon (Lemma 1 is the special case of conditioning at a
//    single timestamp).
//  * MostLikelyTrajectory — Viterbi: the single most probable possible
//    world consistent with all observations, with its probability.
//
// Both are validated against exhaustive possible-worlds enumeration.

#ifndef USTDB_CORE_SMOOTHING_H_
#define USTDB_CORE_SMOOTHING_H_

#include <vector>

#include "core/multi_observation.h"
#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// Posterior marginals of one object over a time horizon.
struct SmoothingResult {
  /// First timestamp of the horizon (== time of the first observation).
  Timestamp t_start = 0;
  /// marginals[i] = P(o(t_start + i) = · | observations), normalized.
  std::vector<sparse::ProbVector> marginals;
};

/// \brief Forward–backward smoothing.
///
/// \param observations sorted by strictly increasing time; the first
///        observation anchors the horizon start. Same validation rules as
///        MultiObservationEngine.
/// \param t_horizon last timestamp of interest; must be >= the first
///        observation time. Observations beyond t_horizon still condition
///        the result (their information flows backward).
/// Fails with kInconsistent when the observations admit no possible world.
util::Result<SmoothingResult> SmoothedMarginals(
    const markov::MarkovChain& chain,
    const std::vector<Observation>& observations, Timestamp t_horizon);

/// One most-probable possible world.
struct ViterbiResult {
  Timestamp t_start = 0;
  /// States at t_start, t_start+1, ..., max(t_horizon, last observation
  /// time) — the decode always extends through the final observation since
  /// later evidence changes the maximizing prefix.
  std::vector<StateIndex> path;
  /// Posterior probability of this world given the observations
  /// (prior path probability times observation likelihoods, normalized by
  /// the total surviving mass).
  double posterior_probability = 0.0;
};

/// \brief Viterbi decoding: the most probable trajectory from the first
/// observation time through t_horizon, conditioned on all observations
/// (max-product in log space; ties resolved toward the smaller state id).
util::Result<ViterbiResult> MostLikelyTrajectory(
    const markov::MarkovChain& chain,
    const std::vector<Observation>& observations, Timestamp t_horizon);

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_SMOOTHING_H_
