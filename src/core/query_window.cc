#include "core/query_window.h"

#include <algorithm>

namespace ustdb {
namespace core {

QueryWindow::QueryWindow(sparse::IndexSet region, std::vector<Timestamp> times)
    : region_(std::move(region)), times_(std::move(times)) {
  time_bitmap_.assign(times_.back() + 1, 0);
  for (Timestamp t : times_) time_bitmap_[t] = 1;
}

util::Result<QueryWindow> QueryWindow::Create(sparse::IndexSet region,
                                              std::vector<Timestamp> times) {
  if (times.empty()) {
    return util::Status::InvalidArgument("query window has no timestamps");
  }
  if (region.empty()) {
    return util::Status::InvalidArgument("query window has an empty region");
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return QueryWindow(std::move(region), std::move(times));
}

util::Result<QueryWindow> QueryWindow::FromRanges(uint32_t num_states,
                                                  StateIndex s_lo,
                                                  StateIndex s_hi,
                                                  Timestamp t_lo,
                                                  Timestamp t_hi) {
  USTDB_ASSIGN_OR_RETURN(sparse::IndexSet region,
                         sparse::IndexSet::FromRange(num_states, s_lo, s_hi));
  if (t_lo > t_hi) {
    return util::Status::InvalidArgument("query time range is inverted");
  }
  std::vector<Timestamp> times(t_hi - t_lo + 1);
  for (Timestamp t = t_lo; t <= t_hi; ++t) times[t - t_lo] = t;
  return Create(std::move(region), std::move(times));
}

QueryWindow QueryWindow::WithComplementRegion() const {
  QueryWindow w(region_.Complement(), times_);
  return w;
}

QueryWindow QueryWindow::ShiftedBy(Timestamp delta) const {
  std::vector<Timestamp> shifted(times_.size());
  for (size_t i = 0; i < times_.size(); ++i) shifted[i] = times_[i] + delta;
  return QueryWindow(region_, std::move(shifted));
}

}  // namespace core
}  // namespace ustdb
