// Copyright 2026 the ustdb authors.
//
// EngineCache — LRU cache of query-based engines keyed by (chain, window).
// The QB plan front-loads its cost into one backward pass whose result is
// reusable across every object *and every later identical query*; a
// monitoring deployment (the paper's iceberg/traffic scenarios) re-issues
// the same windows continuously, so caching the start vectors turns repeat
// queries into pure dot products.

#ifndef USTDB_CORE_ENGINE_CACHE_H_
#define USTDB_CORE_ENGINE_CACHE_H_

#include <list>
#include <map>
#include <memory>
#include <vector>

#include "core/query_based.h"
#include "core/query_window.h"
#include "markov/markov_chain.h"

namespace ustdb {
namespace core {

/// Cache statistics.
struct EngineCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// \brief LRU cache of QueryBasedEngine instances.
///
/// Keys are (chain pointer, region elements, time set); two windows with
/// equal content share an entry regardless of how they were built.
/// Not thread-safe; wrap externally or use one per thread. The batch
/// executor splits Get() into Lookup() + Put() so that cache bookkeeping
/// stays on the submitting thread while missed backward passes are built
/// inside parallel group tasks and inserted after the batch completes.
class EngineCache {
 public:
  /// \param capacity maximum number of cached engines (>= 1).
  explicit EngineCache(size_t capacity = 16)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// \brief Returns the engine for (chain, window), building and caching
  /// it on a miss. The pointer stays valid until the entry is evicted —
  /// do not hold it across further Get() or Put() calls.
  const QueryBasedEngine* Get(const markov::MarkovChain* chain,
                              const QueryWindow& window);

  /// \brief Returns the cached engine for (chain, window) or nullptr,
  /// recording a hit or a miss. Never builds and never evicts, so pointers
  /// returned by earlier Lookup() calls stay valid until the next Get(),
  /// Put(), or Clear() — the batch executor relies on this to borrow
  /// several engines at once without them evicting each other.
  const QueryBasedEngine* Lookup(const markov::MarkovChain* chain,
                                 const QueryWindow& window);

  /// \brief Inserts a pre-built engine for (chain, window), evicting the
  /// least-recently-used entry when full. If the key is already cached the
  /// existing engine is kept (and returned) and `engine` is discarded.
  /// Records evictions but neither hits nor misses (a paired Lookup()
  /// already did). `engine` must have been built for exactly this chain
  /// and window, in the default (implicit) matrix mode.
  const QueryBasedEngine* Put(const markov::MarkovChain* chain,
                              const QueryWindow& window,
                              std::unique_ptr<QueryBasedEngine> engine);

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  const EngineCacheStats& stats() const { return stats_; }

  /// Drops every entry (e.g. after a chain is mutated/replaced).
  void Clear();

 private:
  struct Key {
    const markov::MarkovChain* chain;
    std::vector<uint32_t> region;
    std::vector<Timestamp> times;

    bool operator<(const Key& other) const {
      if (chain != other.chain) return chain < other.chain;
      if (region != other.region) return region < other.region;
      return times < other.times;
    }
  };

  struct Entry {
    Key key;
    std::unique_ptr<QueryBasedEngine> engine;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
  EngineCacheStats stats_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_ENGINE_CACHE_H_
