// Copyright 2026 the ustdb authors.
//
// EngineCache — LRU cache of query-based engines keyed by (chain, window).
// The QB plan front-loads its cost into one backward pass whose result is
// reusable across every object *and every later identical query*; a
// monitoring deployment (the paper's iceberg/traffic scenarios) re-issues
// the same windows continuously, so caching the start vectors turns repeat
// queries into pure dot products.

#ifndef USTDB_CORE_ENGINE_CACHE_H_
#define USTDB_CORE_ENGINE_CACHE_H_

#include <list>
#include <map>
#include <memory>
#include <vector>

#include "core/query_based.h"
#include "core/query_window.h"
#include "markov/interval_chain.h"
#include "markov/markov_chain.h"

namespace ustdb {
namespace core {

/// Cache statistics. hits/misses/evictions cover the query-based engine
/// store; the bound_* counters cover the Section V-C cluster stores
/// (interval envelopes and their per-window bound passes), which live in
/// separate LRU lists so admitting a bound pass can never evict a borrowed
/// backward pass.
struct EngineCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bound_hits = 0;       ///< envelope + bound-pass lookups served
  uint64_t bound_misses = 0;     ///< envelope + bound-pass lookups missed
  uint64_t bound_evictions = 0;  ///< entries displaced from either store
  /// Entries (any store) dropped at lookup because their build epoch no
  /// longer matches the caller's — the lazy per-chain invalidation of the
  /// ingest path. Every stale drop also counts as a miss in its store's
  /// hit/miss pair; the cache is never flushed wholesale by a mutation.
  uint64_t invalidations = 0;
  /// Engines built by extending a cached shifted-window base (delta
  /// propagation steps) instead of a cold full backward pass.
  uint64_t shift_extends = 0;
};

/// \brief LRU cache of QueryBasedEngine instances.
///
/// Keys are (chain pointer, region elements, time set); two windows with
/// equal content share an entry regardless of how they were built.
/// Not thread-safe; wrap externally or use one per thread. The batch
/// executor splits Get() into Lookup() + Put() so that cache bookkeeping
/// stays on the submitting thread while missed backward passes are built
/// inside parallel group tasks and inserted after the batch completes.
class EngineCache {
 public:
  /// \param capacity maximum number of cached engines (>= 1).
  explicit EngineCache(size_t capacity = 16)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// \brief Returns the engine for (chain, window), building and caching
  /// it on a miss. The pointer stays valid until the entry is evicted —
  /// do not hold it across further Get() or Put() calls.
  ///
  /// Every store method takes the caller's current `epoch` for the data
  /// the entry derives from (Database::chain_epoch for the engine store,
  /// cluster_epoch for the cluster stores; 0 — the default — for frozen
  /// databases, making the tag a no-op). An entry is served only at the
  /// epoch it was built at: a lookup that finds a stale entry drops it,
  /// counting an invalidation plus the ordinary miss. On a Get() miss a
  /// same-epoch cached engine whose window is this window shifted
  /// backward is extended by the delta instead of built cold.
  const QueryBasedEngine* Get(const markov::MarkovChain* chain,
                              const QueryWindow& window,
                              DataVersion epoch = 0);

  /// \brief Returns the cached engine for (chain, window) or nullptr,
  /// recording a hit or a miss. Never builds and never evicts, so pointers
  /// returned by earlier Lookup() calls stay valid until the next Get(),
  /// Put(), or Clear() — the batch executor relies on this to borrow
  /// several engines at once without them evicting each other. A stale
  /// entry IS destroyed by the lookup that finds it — safe under the
  /// borrow contract, because batch keys are distinct and a borrow only
  /// ever holds a fresh-epoch entry, never the stale one being dropped.
  const QueryBasedEngine* Lookup(const markov::MarkovChain* chain,
                                 const QueryWindow& window,
                                 DataVersion epoch = 0);

  /// \brief Returns a same-epoch cached engine whose window equals
  /// `window` shifted backward by some delta >= 1 (same region elements,
  /// every time lower by the same delta), writing the delta, or nullptr.
  /// Prefers the smallest delta (cheapest extension). Counts neither a
  /// hit nor a miss — callers pair it with a failed Lookup()/Get() that
  /// already recorded the miss — but counts a shift_extend on success.
  /// Never evicts; the returned borrow obeys Lookup()'s validity rules.
  const QueryBasedEngine* LookupShiftBase(const markov::MarkovChain* chain,
                                          const QueryWindow& window,
                                          DataVersion epoch,
                                          Timestamp* delta);

  /// \brief Inserts a pre-built engine for (chain, window), evicting the
  /// least-recently-used entry when full. If the key is already cached at
  /// this epoch the existing engine is kept (and returned) and `engine`
  /// is discarded; a stale same-key entry is replaced (counting an
  /// invalidation). Records evictions but neither hits nor misses (a
  /// paired Lookup() already did). `engine` must have been built for
  /// exactly this chain and window, in the default (implicit) matrix
  /// mode.
  const QueryBasedEngine* Put(const markov::MarkovChain* chain,
                              const QueryWindow& window,
                              std::unique_ptr<QueryBasedEngine> engine,
                              DataVersion epoch = 0);

  /// \brief Cached interval envelope of one chain cluster, or nullptr
  /// (recording a bound hit/miss). Keyed by (leader ChainId, member
  /// count) — ids are stable where chain pointers are not (growing the
  /// Database reallocates its chain storage) — and a cluster that gained
  /// a member reads as a different key, so stale envelopes age out of the
  /// LRU instead of serving unsound bounds. The pointer stays valid until
  /// the next PutEnvelope() or Clear(). Cached envelopes store their
  /// bounds interleaved ({lo,hi} per transition entry) for the vectorized
  /// bound sweep, and that sweep is bit-identical under every kernel
  /// dispatch table — a hit never depends on which ISA built or reuses
  /// the entry, even across a runtime kernels::SetActiveIsa() flip.
  const markov::IntervalMarkovChain* LookupEnvelope(ChainId leader,
                                                    uint32_t num_members,
                                                    DataVersion epoch = 0);

  /// \brief Inserts a cluster envelope, evicting the least-recently-used
  /// envelope when full; returns the cached instance (the existing one if
  /// the key was already present at this epoch).
  const markov::IntervalMarkovChain* PutEnvelope(
      ChainId leader, uint32_t num_members,
      markov::IntervalMarkovChain envelope, DataVersion epoch = 0);

  /// \brief Cached per-start-state bound pass of one (cluster, window)
  /// pair, or nullptr (recording a bound hit/miss). The pointer stays
  /// valid until the next PutBounds() or Clear(). Cached vectors carry
  /// whatever the producer computed — the executor stores upper-only
  /// passes (lo pinned to 0).
  const std::vector<markov::ProbBound>* LookupBounds(
      ChainId leader, uint32_t num_members, const QueryWindow& window,
      DataVersion epoch = 0);

  /// \brief Inserts a computed bound pass for (cluster, window), evicting
  /// the least-recently-used bound pass when full; returns the cached
  /// instance.
  const std::vector<markov::ProbBound>* PutBounds(
      ChainId leader, uint32_t num_members, const QueryWindow& window,
      std::vector<markov::ProbBound> bounds, DataVersion epoch = 0);

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  const EngineCacheStats& stats() const { return stats_; }

  /// Cached cluster envelopes currently held.
  size_t envelope_size() const { return envelopes_.lru.size(); }
  /// Cached cluster bound passes currently held.
  size_t bounds_size() const { return bounds_.lru.size(); }

  /// Drops every entry (e.g. after a chain is mutated/replaced).
  void Clear();

 private:
  struct Key {
    const markov::MarkovChain* chain;
    std::vector<uint32_t> region;
    std::vector<Timestamp> times;

    bool operator<(const Key& other) const {
      if (chain != other.chain) return chain < other.chain;
      if (region != other.region) return region < other.region;
      return times < other.times;
    }
  };

  struct Entry {
    Key key;
    std::unique_ptr<QueryBasedEngine> engine;
    DataVersion epoch = 0;  ///< chain epoch the pass was built at
  };

  /// Shared LRU-map implementation of the two cluster stores; V is the
  /// cached payload, K must be strictly ordered. Every node carries the
  /// epoch it was admitted at; a lookup at a different epoch drops the
  /// node (lazy invalidation, reported via `invalidated`).
  template <typename K, typename V>
  struct LruStore {
    struct Node {
      K key;
      V value;
      DataVersion epoch = 0;
    };
    std::list<Node> lru;  // front = most recently used
    std::map<K, typename std::list<Node>::iterator> index;

    /// Returns the payload and refreshes recency, or nullptr. A stale
    /// node reads as a miss and is dropped, setting `*invalidated`.
    V* Lookup(const K& key, DataVersion epoch, bool* invalidated) {
      auto it = index.find(key);
      if (it == index.end()) return nullptr;
      if (it->second->epoch != epoch) {
        *invalidated = true;
        lru.erase(it->second);
        index.erase(it);
        return nullptr;
      }
      lru.splice(lru.begin(), lru, it->second);
      return &it->second->value;
    }

    /// Inserts (keeping any same-epoch existing entry; replacing a stale
    /// one, reported via `invalidated`); `evicted` reports an LRU entry
    /// displaced to stay within `capacity`.
    V* Put(const K& key, V value, DataVersion epoch, size_t capacity,
           bool* evicted, bool* invalidated) {
      if (V* existing = Lookup(key, epoch, invalidated)) return existing;
      *evicted = lru.size() >= capacity;
      if (*evicted) {
        index.erase(lru.back().key);
        lru.pop_back();
      }
      lru.push_front(Node{key, std::move(value), epoch});
      index[key] = lru.begin();
      return &lru.front().value;
    }
  };

  /// (leader chain id, member count) — see LookupEnvelope.
  using ClusterKey = std::pair<ChainId, uint32_t>;
  /// Cluster key plus window contents — see LookupBounds.
  struct BoundsKey {
    ClusterKey cluster;
    std::vector<uint32_t> region;
    std::vector<Timestamp> times;

    bool operator<(const BoundsKey& other) const {
      if (cluster != other.cluster) return cluster < other.cluster;
      if (region != other.region) return region < other.region;
      return times < other.times;
    }
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
  LruStore<ClusterKey, markov::IntervalMarkovChain> envelopes_;
  LruStore<BoundsKey, std::vector<markov::ProbBound>> bounds_;
  EngineCacheStats stats_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_ENGINE_CACHE_H_
