#include "core/processor.h"

#include <map>

#include "core/multi_observation.h"

namespace ustdb {
namespace core {

util::Result<std::vector<ObjectProbability>> QueryProcessor::ExistsImpl(
    const QueryWindow& window, const ProcessorOptions& options) const {
  std::vector<ObjectProbability> out;
  out.reserve(db_->num_objects());

  // Engines are built lazily, once per chain class.
  std::map<ChainId, ObjectBasedEngine> ob_cache;
  std::map<ChainId, QueryBasedEngine> qb_cache;

  for (const UncertainObject& obj : db_->objects()) {
    double p = 0.0;
    if (!obj.single_observation() || obj.observations.front().time != 0) {
      MultiObservationEngine engine(&db_->chain(obj.chain), window,
                                    {.mode = options.matrix_mode});
      USTDB_ASSIGN_OR_RETURN(MultiObsResult r,
                             engine.Evaluate(obj.observations));
      p = r.exists_probability;
    } else if (options.plan == Plan::kObjectBased) {
      auto it = ob_cache.find(obj.chain);
      if (it == ob_cache.end()) {
        it = ob_cache
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(obj.chain),
                          std::forward_as_tuple(
                              &db_->chain(obj.chain), window,
                              ObjectBasedOptions{.mode = options.matrix_mode}))
                 .first;
      }
      p = it->second.ExistsProbability(obj.initial_pdf());
    } else {
      auto it = qb_cache.find(obj.chain);
      if (it == qb_cache.end()) {
        it = qb_cache
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(obj.chain),
                          std::forward_as_tuple(
                              &db_->chain(obj.chain), window,
                              QueryBasedOptions{.mode = options.matrix_mode}))
                 .first;
      }
      p = it->second.ExistsProbability(obj.initial_pdf());
    }
    out.push_back({obj.id, p});
  }
  return out;
}

util::Result<std::vector<ObjectProbability>> QueryProcessor::Exists(
    const QueryWindow& window, const ProcessorOptions& options) const {
  return ExistsImpl(window, options);
}

util::Result<std::vector<ObjectProbability>> QueryProcessor::ForAll(
    const QueryWindow& window, const ProcessorOptions& options) const {
  USTDB_ASSIGN_OR_RETURN(
      std::vector<ObjectProbability> complement,
      ExistsImpl(window.WithComplementRegion(), options));
  for (ObjectProbability& r : complement) {
    r.probability = 1.0 - r.probability;
  }
  return complement;
}

util::Result<std::vector<ObjectKTimes>> QueryProcessor::KTimes(
    const QueryWindow& window, const ProcessorOptions& options) const {
  std::vector<ObjectKTimes> out;
  out.reserve(db_->num_objects());
  std::map<ChainId, KTimesEngine> engines;
  for (const UncertainObject& obj : db_->objects()) {
    if (!obj.single_observation() || obj.observations.front().time != 0) {
      return util::Status::Unimplemented(
          "PSTkQ under multiple observations is not covered by the paper's "
          "framework; remove multi-observation objects or query PST∃Q");
    }
    auto it = engines.find(obj.chain);
    if (it == engines.end()) {
      it = engines
               .emplace(std::piecewise_construct,
                        std::forward_as_tuple(obj.chain),
                        std::forward_as_tuple(
                            &db_->chain(obj.chain), window,
                            KTimesOptions{.mode = options.matrix_mode}))
               .first;
    }
    out.push_back({obj.id, it->second.Distribution(obj.initial_pdf())});
  }
  return out;
}

}  // namespace core
}  // namespace ustdb
