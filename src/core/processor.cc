#include "core/processor.h"

#include "core/executor.h"

namespace ustdb {
namespace core {

namespace {

/// The legacy options mapped onto a pipeline request: plan always forced
/// (the old API had no auto mode), sequential execution.
QueryRequest MakeRequest(PredicateKind predicate, const QueryWindow& window,
                         const ProcessorOptions& options) {
  QueryRequest request;
  request.predicate = predicate;
  request.window = window;
  request.plan = options.plan == Plan::kObjectBased ? PlanChoice::kObjectBased
                                                    : PlanChoice::kQueryBased;
  request.matrix_mode = options.matrix_mode;
  return request;
}

ExecutorOptions SequentialOptions() { return {.num_threads = 1}; }

}  // namespace

util::Result<std::vector<ObjectProbability>> QueryProcessor::Exists(
    const QueryWindow& window, const ProcessorOptions& options) const {
  QueryExecutor executor(db_, SequentialOptions());
  USTDB_ASSIGN_OR_RETURN(
      QueryResult result,
      executor.Run(MakeRequest(PredicateKind::kExists, window, options)));
  return std::move(result.probabilities);
}

util::Result<std::vector<ObjectProbability>> QueryProcessor::ForAll(
    const QueryWindow& window, const ProcessorOptions& options) const {
  QueryExecutor executor(db_, SequentialOptions());
  USTDB_ASSIGN_OR_RETURN(
      QueryResult result,
      executor.Run(MakeRequest(PredicateKind::kForAll, window, options)));
  return std::move(result.probabilities);
}

util::Result<std::vector<ObjectKTimes>> QueryProcessor::KTimes(
    const QueryWindow& window, const ProcessorOptions& options) const {
  QueryExecutor executor(db_, SequentialOptions());
  USTDB_ASSIGN_OR_RETURN(
      QueryResult result,
      executor.Run(MakeRequest(PredicateKind::kKTimes, window, options)));
  return std::move(result.distributions);
}

}  // namespace core
}  // namespace ustdb
