// Copyright 2026 the ustdb authors.
//
// QueryPlanner — cost-based choice between the paper's two evaluation
// plans, decided per chain class. Section V gives the asymptotics: the
// object-based plan (V-A) pays one full forward pass per object, the
// query-based plan (V-B) pays one backward pass per chain class plus one
// sparse dot product per object. Which wins therefore depends on the
// database statistics (objects per chain), the window's temporal reach
// (transitions per pass), and the matrix mode (explicit M± materialization
// makes each pass more expensive).
//
// A batch of requests sharing one (window, matrix-mode) key shifts the
// trade-off further: the backward pass is paid once for the whole group,
// so PlanBatch() amortizes it over every member request while the
// object-based side still pays per member and per object.

#ifndef USTDB_CORE_PLANNER_H_
#define USTDB_CORE_PLANNER_H_

#include <span>

#include "core/database.h"
#include "core/query_request.h"

namespace ustdb {
namespace core {

/// \brief Estimated work, in transition-matrix-entry touches, for
/// answering one chain class's objects under each plan. Both figures are
/// proportional to t_end × nnz (the window's temporal reach times the
/// matrix entries touched per transition).
struct CostEstimate {
  /// n × t_end × nnz — one forward pass per object (× the τ-early-stop
  /// discount for threshold predicates).
  double object_based = 0.0;
  /// t_end × nnz + n × dot — one shared backward pass, then a sparse dot
  /// product per object (per member for batches).
  double query_based = 0.0;
  /// Section V-C bound pass: one upper-only interval backward pass per
  /// touched chain cluster (costed at kIntervalPassFactor × t_end ×
  /// envelope-nnz), one upper-bound dot product per object, plus the
  /// expected refine fraction of the query-based cost. Filled by
  /// ChooseThresholdPlan only; 0 elsewhere.
  double bounds_then_refine = 0.0;
};

/// The planner's verdict for one chain class (Choose / PlanBatch) or for
/// a whole threshold request (ChooseThresholdPlan).
struct PlanDecision {
  Plan plan = Plan::kQueryBased;
  CostEstimate cost;
  /// True when the request forced the plan and the cost model was bypassed.
  bool forced = false;
};

/// \brief The load one request of a batch group places on a chain class:
/// its predicate (threshold predicates discount the object-based side via
/// τ-early-termination) and how many single-observation objects of the
/// chain it evaluates after filtering.
struct MemberLoad {
  PredicateKind predicate = PredicateKind::kExists;
  uint32_t num_objects = 0;
};

/// \brief One chain class's share of a threshold request: the chain and how
/// many single-observation objects of it the request evaluates. Input of
/// ChooseThresholdPlan.
struct ChainLoad {
  ChainId chain = 0;
  uint32_t num_objects = 0;
};

/// \brief Chooses the evaluation plan per chain class from Database
/// statistics.
///
/// Stateless beyond the database pointer; cheap to construct and
/// thread-safe (all entry points are const and touch only immutable
/// database statistics). Every cost figure is O(1) to compute.
class QueryPlanner {
 public:
  /// \param db the database whose statistics feed the cost model; must
  ///        outlive the planner.
  explicit QueryPlanner(const Database* db) : db_(db) {}

  /// \brief Decides the plan for `chain` under `request`, honoring a
  /// forced PlanChoice and otherwise comparing cost estimates.
  ///
  /// Equivalent to PlanBatch() with a single member carrying the request's
  /// predicate — a solo run is a batch group of one.
  ///
  /// \param chain the chain class being planned.
  /// \param request supplies the window (temporal reach), matrix mode, and
  ///        plan directive.
  /// \param num_objects how many single-observation objects of this chain
  ///        the request will actually evaluate (after filtering);
  ///        multi-observation objects bypass both plans and are excluded.
  PlanDecision Choose(ChainId chain, const QueryRequest& request,
                      uint32_t num_objects) const;

  /// \brief Batch-aware plan decision for one chain class shared by every
  /// member of a RunBatch group (requests with identical effective window
  /// and matrix mode).
  ///
  /// Cost model: the object-based side pays one forward pass per object
  /// per member — sum over members of n_m × t_end × nnz, discounted for
  /// threshold predicates — while the query-based side pays a single
  /// backward pass (t_end × nnz) for the whole group plus one dot product
  /// per object per member. Amortization therefore tips the decision
  /// toward the query-based plan as the group grows; with one member the
  /// decision is identical to Choose().
  ///
  /// \param chain the chain class being planned.
  /// \param window the group's effective window (only its temporal reach,
  ///        max T□, enters the cost).
  /// \param mode the group's matrix mode (kExplicit scales up every pass).
  /// \param members per-member loads; only members that left plan choice
  ///        to the planner belong here (forced members bypass the model).
  ///        An empty span yields the object-based plan at zero cost.
  PlanDecision PlanBatch(ChainId chain, const QueryWindow& window,
                         MatrixMode mode,
                         std::span<const MemberLoad> members) const;

  /// \brief Whole-request decision for kThresholdExists: prices the
  /// Section V-C bounds-then-refine plan — one interval bound pass per
  /// chain cluster touched by `loads`, plus an expected refine fraction of
  /// the query-based cost — against the best per-chain OB/QB mix, using
  /// the database's cluster registry.
  ///
  /// Returns kBoundsThenRefine when the bound pass wins (or `directive`
  /// forces it, marking the decision forced); otherwise returns the
  /// cheaper of the aggregated per-chain plans so the caller can proceed
  /// with per-chain Choose() decisions. Every cost field of the returned
  /// estimate is filled. An empty `loads` never chooses the bound pass.
  ///
  /// The caller remains responsible for window eligibility (contiguous,
  /// non-degenerate time range) — the cost model does not inspect it.
  ///
  /// \param window the request window (temporal reach enters every cost).
  /// \param mode the request matrix mode (kExplicit scales refine passes).
  /// \param directive the request's PlanChoice; kBoundsThenRefine forces.
  /// \param loads per-chain single-observation object counts.
  PlanDecision ChooseThresholdPlan(const QueryWindow& window, MatrixMode mode,
                                   PlanChoice directive,
                                   std::span<const ChainLoad> loads) const;

  /// \brief Cost of one forward or backward pass over `chain` for
  /// `window`: transitions (the window's temporal reach, max T□) times the
  /// matrix entries touched per transition — t_end × nnz — scaled up under
  /// kExplicit mode which materializes and multiplies the augmented M−/M+
  /// pair.
  static double PassCost(const markov::MarkovChain& chain,
                         const QueryWindow& window, MatrixMode mode);

  /// The database whose statistics feed the cost model.
  const Database& db() const { return *db_; }

 private:
  const Database* db_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_PLANNER_H_
