// Copyright 2026 the ustdb authors.
//
// QueryPlanner — cost-based choice between the paper's two evaluation
// plans, decided per chain class. Section V gives the asymptotics: the
// object-based plan (V-A) pays one full forward pass per object, the
// query-based plan (V-B) pays one backward pass per chain class plus one
// sparse dot product per object. Which wins therefore depends on the
// database statistics (objects per chain), the window's temporal reach
// (transitions per pass), and the matrix mode (explicit M± materialization
// makes each pass more expensive).

#ifndef USTDB_CORE_PLANNER_H_
#define USTDB_CORE_PLANNER_H_

#include "core/database.h"
#include "core/query_request.h"

namespace ustdb {
namespace core {

/// Estimated work, in transition-matrix-entry touches, for answering one
/// chain class's objects under each plan.
struct CostEstimate {
  double object_based = 0.0;
  double query_based = 0.0;
};

/// The planner's verdict for one chain class.
struct PlanDecision {
  Plan plan = Plan::kQueryBased;
  CostEstimate cost;
  /// True when the request forced the plan and the cost model was bypassed.
  bool forced = false;
};

/// \brief Chooses the evaluation plan per chain class from Database
/// statistics. Stateless beyond the database pointer; cheap to construct.
class QueryPlanner {
 public:
  /// \param db must outlive the planner.
  explicit QueryPlanner(const Database* db) : db_(db) {}

  /// \brief Decides the plan for `chain` under `request`, honoring a
  /// forced PlanChoice and otherwise comparing cost estimates.
  /// \param num_objects how many single-observation objects of this chain
  ///        the request will actually evaluate (after filtering);
  ///        multi-observation objects bypass both plans and are excluded.
  PlanDecision Choose(ChainId chain, const QueryRequest& request,
                      uint32_t num_objects) const;

  /// \brief Cost of one forward or backward pass over `chain` for
  /// `window`: transitions (the window's temporal reach, max T□) times the
  /// matrix entries touched per transition, scaled up under kExplicit mode
  /// which materializes and multiplies the augmented M−/M+ pair.
  static double PassCost(const markov::MarkovChain& chain,
                         const QueryWindow& window, MatrixMode mode);

  const Database& db() const { return *db_; }

 private:
  const Database* db_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_PLANNER_H_
