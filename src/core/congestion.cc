#include "core/congestion.h"

#include <algorithm>

#include "util/compensated_sum.h"
#include "util/string_util.h"

namespace ustdb {
namespace core {

double ExpectedCountField::RegionCount(Timestamp t,
                                       const sparse::IndexSet& region) const {
  util::CompensatedSum acc;
  const double* row = counts_.data() + static_cast<size_t>(t) * num_states_;
  for (uint32_t s : region) acc.Add(row[s]);
  return acc.Total();
}

std::vector<double> ExpectedCountField::RegionSeries(
    const sparse::IndexSet& region) const {
  std::vector<double> out;
  out.reserve(t_max() + 1);
  for (Timestamp t = 0; t <= t_max(); ++t) {
    out.push_back(RegionCount(t, region));
  }
  return out;
}

util::Result<ExpectedCountField> ExpectedCounts(const Database& db,
                                                Timestamp t_max) {
  if (db.num_chains() == 0) {
    return util::Status::FailedPrecondition("database has no chains");
  }
  const uint32_t n = db.chain(0).num_states();
  for (ChainId c = 1; c < db.num_chains(); ++c) {
    if (db.chain(c).num_states() != n) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "chain %u has %u states, chain 0 has %u — expected-count fields "
          "require one shared state space",
          c, db.chain(c).num_states(), n));
    }
  }

  ExpectedCountField field(n, t_max);
  sparse::VecMatWorkspace ws;
  for (const UncertainObject& obj : db.objects()) {
    const Timestamp t0 = obj.observations.front().time;
    if (t0 > t_max) continue;  // object enters after the horizon
    sparse::ProbVector dist = obj.initial_pdf();
    // Accumulate the marginal at t0, then propagate forward.
    dist.ForEachNonZero([&](uint32_t s, double p) {
      field.MutableRow(t0)[s] += p;
    });
    for (Timestamp t = t0 + 1; t <= t_max; ++t) {
      ws.Multiply(dist, db.chain(obj.chain).matrix(), &dist);
      dist.ForEachNonZero([&](uint32_t s, double p) {
        field.MutableRow(t)[s] += p;
      });
    }
  }
  return field;
}

std::vector<Hotspot> TopHotspots(const ExpectedCountField& field,
                                 uint32_t k) {
  std::vector<Hotspot> all;
  for (Timestamp t = 0; t <= field.t_max(); ++t) {
    for (StateIndex s = 0; s < field.num_states(); ++s) {
      const double c = field.At(t, s);
      if (c > 0.0) all.push_back({t, s, c});
    }
  }
  const auto better = [](const Hotspot& a, const Hotspot& b) {
    if (a.expected_count != b.expected_count) {
      return a.expected_count > b.expected_count;
    }
    if (a.time != b.time) return a.time < b.time;
    return a.state < b.state;
  };
  const uint32_t take = std::min<uint32_t>(k, static_cast<uint32_t>(all.size()));
  std::partial_sort(all.begin(), all.begin() + take, all.end(), better);
  all.resize(take);
  return all;
}

}  // namespace core
}  // namespace ustdb
