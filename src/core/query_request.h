// Copyright 2026 the ustdb authors.
//
// QueryRequest / QueryResult — the single request type understood by the
// planner/executor pipeline. One struct describes every predicate of the
// paper (PST∃Q, PST∀Q, PSTkQ of Section III plus the threshold/top-k
// variants of Section V) so that plan selection, parallel execution,
// engine caching, and pruning apply uniformly instead of living in
// per-predicate entry points.

#ifndef USTDB_CORE_QUERY_REQUEST_H_
#define USTDB_CORE_QUERY_REQUEST_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/object_based.h"
#include "core/query_window.h"
#include "obs/trace.h"
#include "sparse/types.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ustdb {
namespace core {

/// Which query evaluation plan to run.
enum class Plan {
  /// Forward per-object evaluation (Section V-A).
  kObjectBased,
  /// Backward per-chain evaluation, amortized over objects (Section V-B).
  kQueryBased,
  /// Section V-C cluster pruning: bound whole chain clusters with an
  /// IntervalMarkovChain envelope, drop every object whose upper bound
  /// falls below τ, and refine only the undecided remainder (query-based,
  /// per chain). Only meaningful for kThresholdExists over a window whose
  /// time set is a contiguous range.
  kBoundsThenRefine,
};

/// Plan selection directive carried by a request. kAuto defers to the
/// QueryPlanner's cost model, decided independently per chain class —
/// except for kThresholdExists, where the planner may first choose the
/// whole-request kBoundsThenRefine plan from the database's cluster
/// registry. kBoundsThenRefine forces that plan; when the window is not
/// eligible (non-contiguous or degenerate time range) the executor falls
/// back to per-chain cost-based planning and counts the fallback in
/// PruneStats::bound_fallbacks.
enum class PlanChoice {
  kAuto,
  /// Cost-based per-chain selection that never considers the
  /// whole-request kBoundsThenRefine plan. The shard router pins this on
  /// threshold sub-requests after deciding bound-vs-per-chain globally:
  /// the bound plan's break-even sums over every chain of the request,
  /// so re-deciding it per shard could diverge from the unsharded
  /// pipeline. For every other predicate it behaves exactly like kAuto.
  kAutoPerChain,
  kObjectBased,
  kQueryBased,
  kBoundsThenRefine,
};

/// The predicate a request evaluates.
enum class PredicateKind {
  /// PST∃Q (Definition 2): P(object intersects S□ × T□), every object.
  kExists,
  /// PST∀Q (Definition 3): P(object inside S□ at all t ∈ T□), every
  /// object, via the complement reduction of Section VII.
  kForAll,
  /// PSTkQ (Definition 4): full visit-count distribution per object.
  kKTimes,
  /// Objects with P∃ >= tau, ascending by id (Section V's query mode).
  kThresholdExists,
  /// The k objects with the highest P∃, descending (ties broken by id).
  kTopKExists,
};

/// Per-object query answer: one object id and its window probability.
struct ObjectProbability {
  ObjectId id = 0;
  double probability = 0.0;

  bool operator==(const ObjectProbability&) const = default;
};

/// Degradation directive carried by a request (see docs/RESILIENCE.md).
enum class DegradeMode {
  /// Full-precision answers only (default; behavior unchanged).
  kNever,
  /// The caller accepts a bounds-only answer when the service is shedding
  /// load or a shard is quarantined. The executor itself treats this like
  /// kNever — only the service downgrades it to kBoundsOnly.
  kUnderPressure,
  /// Answer kThresholdExists from the Section V-C interval bounds alone:
  /// certainly-qualifying objects are returned (with their lower bound as
  /// the reported probability), certainly-failing objects are dropped, and
  /// everything else lands in QueryResult::undecided with its [lo, hi]
  /// interval. The result carries degraded_bounds = true. Other predicates
  /// (and non-contiguous windows, multi-observation objects) cannot be
  /// bounded and report every object as undecided over [0, 1].
  kBoundsOnly,
};

/// Retry directive for transient (kUnavailable) sub-request failures,
/// honored by the QueryService dispatcher. The budget is per ticket:
/// every retried sub-request draws from the same budget, backoff grows
/// exponentially per attempt with ±jitter, and a retry never outlives the
/// request's deadline or cancellation token. Default: no retries.
struct RetryPolicy {
  uint32_t max_retries = 0;
  std::chrono::milliseconds initial_backoff{5};
  std::chrono::milliseconds max_backoff{1000};
  double multiplier = 2.0;
  /// Backoff is scaled by a deterministic factor in [1-jitter, 1+jitter].
  double jitter = 0.2;
};

/// Distribution over visit counts for one object (PSTkQ answer).
struct ObjectKTimes {
  ObjectId id = 0;
  /// Element k = P(object inside S□ at exactly k timestamps of T□).
  std::vector<double> distribution;
};

/// \brief Statistics describing how much work pruning avoided.
///
/// Bound-pass accounting invariants (kBoundsThenRefine runs): every object
/// the request evaluates is either dropped by the interval bounds or
/// refined exactly once, so objects_decided_by_bounds + objects_refined
/// equals the evaluated object count; likewise clusters_pruned +
/// clusters_refined == clusters_bounded. objects_decided_early counts only
/// τ-cuts inside object-based refinement and is therefore a subset of —
/// never additive with — objects_refined.
struct PruneStats {
  uint32_t clusters_total = 0;    ///< clusters holding evaluated objects
  uint32_t clusters_bounded = 0;  ///< clusters whose bound pass ran
  uint32_t clusters_pruned = 0;   ///< decided wholesale by interval bounds
  uint32_t clusters_refined = 0;  ///< had >= 1 object needing refinement
  /// Objects dropped by the cluster bound pass (upper bound below τ)
  /// without any individual evaluation.
  uint32_t objects_decided_by_bounds = 0;
  uint32_t objects_refined = 0;   ///< needed an individual evaluation
  uint32_t objects_decided_early = 0;  ///< OB runs cut short by τ-decision
  /// Times a requested/chosen bound pass could not run (non-contiguous or
  /// degenerate window time range) and the run fell back to per-chain
  /// plans. Previously this fallback was silent.
  uint32_t bound_fallbacks = 0;
};

/// \brief One query against a Database, complete with predicate
/// parameters and execution directives. Aggregate-initializable:
///
///   executor.Run({.predicate = PredicateKind::kThresholdExists,
///                 .window = window, .tau = 0.3});
struct QueryRequest {
  PredicateKind predicate = PredicateKind::kExists;
  QueryWindow window;

  /// Probability threshold; only read by kThresholdExists.
  double tau = 0.0;
  /// Result count; only read by kTopKExists.
  uint32_t k = 0;

  /// Plan directive; kAuto lets the planner decide per chain class (and,
  /// for kThresholdExists, consider the whole-request cluster-bound plan).
  PlanChoice plan = PlanChoice::kAuto;
  /// Absorbing-state realization passed through to every engine.
  MatrixMode matrix_mode = MatrixMode::kImplicit;

  /// Restricts evaluation to these object ids (any order, no duplicates).
  /// nullopt evaluates the whole database; an empty vector evaluates
  /// nothing. Used by cluster pruning to refine only undecided objects.
  std::optional<std::vector<ObjectId>> object_filter;

  /// Cooperative cancellation: the executor polls this token between
  /// kStopCheckStride-object sub-chunks of its parallel loop and resolves
  /// the run with Status::Cancelled once it trips, leaving the remaining
  /// objects unevaluated. The default token never stops. The QueryService
  /// links its per-ticket source below a caller-supplied token, so both
  /// QueryTicket::Cancel() and the caller's own source can stop the run.
  util::CancellationToken cancel;

  /// Absolute deadline; past it the executor stops at the next cooperative
  /// check and resolves with Status::DeadlineExceeded (a request whose
  /// deadline has already passed at submission fails without evaluating
  /// anything). nullopt = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Per-query stage trace. When set, the executor (and, above it, the
  /// QueryService) records steady_clock-stamped spans for every pipeline
  /// stage this request passes through; null requests pay nothing beyond
  /// a pointer check. The QueryService attaches one automatically to every
  /// ObsOptions::trace_sample_every-th submission; callers may attach
  /// their own to trace a specific request end to end. Shared: a scattered
  /// request's sub-requests all append to the same trace.
  std::shared_ptr<obs::QueryTrace> trace;

  /// Degradation directive (resilience layer; see DegradeMode).
  DegradeMode degrade = DegradeMode::kNever;

  /// Retry budget for transient sub-request failures (service only; the
  /// executor never retries). Default: no retries.
  RetryPolicy retry;
};

/// \brief Execution telemetry of one QueryExecutor::Run — or, for
/// RunBatch, of one member request (cache counters are attributed to the
/// first successfully answered member of each batch group to avoid
/// double counting).
struct ExecStats {
  /// Chain classes evaluated with the object-based plan.
  uint32_t chains_object_based = 0;
  /// Chain classes evaluated with the query-based plan.
  uint32_t chains_query_based = 0;
  /// Objects answered by the single-observation engines. Counted as the
  /// parallel loop answers them, so a run stopped mid-flight by a
  /// cancellation or deadline reports only the objects it actually
  /// evaluated (observable via QueryExecutor::last_run_stats()).
  uint32_t objects_evaluated = 0;
  /// Objects routed through the Section VI multi-observation engine
  /// (counted as answered, like objects_evaluated).
  uint32_t objects_multi_observation = 0;
  /// Worker threads the executor's pool had available for this run.
  unsigned threads_used = 1;
  /// Engine-cache hits/misses incurred by this run. In a batch these are
  /// reported on the group's first successfully answered member only;
  /// other members read 0.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Engine-cache evictions this solo Run's lookups caused. Batch members
  /// read 0: RunBatch admits batch-built passes after its members have
  /// already been answered, so those evictions are visible only in the
  /// executor-level cache_stats() (and ServiceStats.cache).
  uint64_t cache_evictions = 0;
  /// Stale-epoch cache entries this run's lookups dropped (the lazy
  /// per-chain invalidation of the ingest path). Batch attribution
  /// follows cache_hits/cache_misses.
  uint64_t cache_invalidations = 0;
  /// Backward passes this run obtained by extending a cached
  /// shifted-window base instead of a cold rebuild (standing-query
  /// window slides). Batch attribution follows cache_hits/cache_misses.
  uint64_t cache_shift_extends = 0;
  /// Requests sharing this request's RunBatch group — every member of a
  /// group reuses the same per-chain engines, so a group of size g pays
  /// one backward pass where g solo runs on a cold cache pay g. Zero for
  /// a plain Run.
  uint32_t batch_group_members = 0;
  /// Object-range subtasks this request's evaluation was split into by the
  /// intra-group batch scheduler (the parallel unit of RunBatch's
  /// execution phase; splitting never changes results, every object's
  /// output is written independently). Zero for a plain Run or for a
  /// member stopped before evaluating anything; a member with objects
  /// reports >= 1 even on a single-threaded executor, where the subtasks
  /// simply run in order on one worker.
  uint32_t group_subtasks = 0;
  /// τ-pruning counters (threshold predicates only).
  PruneStats prune;
};

/// One failed sub-request of a partial scatter-gather answer.
struct ShardError {
  uint32_t shard = 0;
  util::StatusCode code = util::StatusCode::kUnavailable;
  std::string message;
};

/// One object a degraded (bounds-only) run could not decide: its window
/// probability is somewhere in [lo, hi]. lo = 0 and hi = 1 when no bound
/// applies (multi-observation object, unbounded predicate/window).
struct ObjectInterval {
  ObjectId id = 0;
  double lo = 0.0;
  double hi = 1.0;

  bool operator==(const ObjectInterval&) const = default;
};

/// \brief The answer to one QueryRequest.
///
/// kExists / kForAll / kThresholdExists / kTopKExists fill `probabilities`
/// (ordering per predicate: request order, request order, ascending id,
/// descending probability). kKTimes fills `distributions` in request order.
///
/// Resilience annotations (see docs/RESILIENCE.md): `partial` marks a
/// scatter-gather answer missing >= 1 shard (per-shard detail in
/// `shard_errors`, the unanswered object ids in `missing_objects`; the
/// ticket still resolves OK and is classified kPartial by the service).
/// `degraded_bounds` marks a bounds-only threshold answer: entries in
/// `probabilities` are certainly above τ (reported probability = their
/// lower bound), absent objects are certainly below, and `undecided`
/// lists the borderline objects with their [lo, hi] intervals. A result
/// without these flags is a full-precision answer — degraded or partial
/// answers are never returned unlabeled.
struct QueryResult {
  std::vector<ObjectProbability> probabilities;
  std::vector<ObjectKTimes> distributions;
  ExecStats stats;

  bool partial = false;
  bool degraded_bounds = false;
  std::vector<ShardError> shard_errors;
  std::vector<ObjectId> missing_objects;
  std::vector<ObjectInterval> undecided;

  /// Data epoch this answer was computed against: the executor stamps
  /// its database's data_version() at run start; scatter-gather merges
  /// take the max over answering shards (shards share one global
  /// version sequence). 0 = a frozen, never-mutated database. A partial
  /// answer thereby names the newest epoch it reflects even when some
  /// shards failed.
  DataVersion epoch = 0;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_QUERY_REQUEST_H_
