// Copyright 2026 the ustdb authors.
//
// QueryWindow — the spatio-temporal query range Q□ = S□ × T□ of Section III:
// a set of states (not necessarily connected) and a set of timestamps (not
// necessarily consecutive).

#ifndef USTDB_CORE_QUERY_WINDOW_H_
#define USTDB_CORE_QUERY_WINDOW_H_

#include <vector>

#include "sparse/index_set.h"
#include "sparse/types.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// \brief Immutable query range Q□ = S□ × T□.
///
/// The paper's experiments use contiguous ranges (states [100,120], times
/// [20,25]) but every engine in ustdb accepts arbitrary subsets of both
/// domains, as Section III promises.
class QueryWindow {
 public:
  QueryWindow() = default;

  /// \brief Builds from an explicit region and time set.
  /// Fails if `times` is empty or `region` is empty.
  static util::Result<QueryWindow> Create(sparse::IndexSet region,
                                          std::vector<Timestamp> times);

  /// \brief Contiguous window: states [s_lo, s_hi] × times [t_lo, t_hi]
  /// (both inclusive), over a state domain of size `num_states`.
  static util::Result<QueryWindow> FromRanges(uint32_t num_states,
                                              StateIndex s_lo, StateIndex s_hi,
                                              Timestamp t_lo, Timestamp t_hi);

  /// The query region S□.
  const sparse::IndexSet& region() const { return region_; }

  /// The query times T□, ascending and unique.
  const std::vector<Timestamp>& times() const { return times_; }

  /// O(1) membership test for t ∈ T□.
  bool ContainsTime(Timestamp t) const {
    return t < time_bitmap_.size() && time_bitmap_[t] != 0;
  }

  /// max(T□) — the last timestamp any engine must reach.
  Timestamp t_end() const { return times_.back(); }

  /// min(T□).
  Timestamp t_begin() const { return times_.front(); }

  /// |T□| — number of query timestamps (the K of PSTkQ).
  uint32_t num_times() const { return static_cast<uint32_t>(times_.size()); }

  /// \brief True when T□ is exactly the inclusive range [t_begin(),
  /// t_end()] — the only time-set shape the Section V-C cluster bound
  /// pass can propagate over, so both the executor and the shard router
  /// gate bound-plan eligibility on it. Checks the degenerate empty
  /// window first (its t_begin()/t_end() are undefined) and compares
  /// span against count in a form that cannot wrap unsigned arithmetic.
  bool has_contiguous_times() const {
    if (times_.empty()) return false;
    return t_end() - t_begin() == static_cast<Timestamp>(times_.size() - 1);
  }

  /// \brief Same times, complemented region (S \ S□) — the reduction PST∀Q
  /// uses: P∀(S□, T□) = 1 − P∃(S\S□, T□).
  QueryWindow WithComplementRegion() const;

  /// \brief Same region, every time shifted forward by `delta` — the
  /// sliding step of a standing query. A shift of >= 1 keeps the window's
  /// shape, which is exactly what lets the EngineCache extend a memoized
  /// backward pass by `delta` propagation steps instead of recomputing.
  QueryWindow ShiftedBy(Timestamp delta) const;

 private:
  QueryWindow(sparse::IndexSet region, std::vector<Timestamp> times);

  sparse::IndexSet region_;
  std::vector<Timestamp> times_;
  std::vector<uint8_t> time_bitmap_;  // size t_end()+1
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_QUERY_WINDOW_H_
