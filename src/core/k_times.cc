#include "core/k_times.h"

#include <cassert>

namespace ustdb {
namespace core {

KTimesEngine::KTimesEngine(const markov::MarkovChain* chain,
                           QueryWindow window, KTimesOptions options)
    : chain_(chain), window_(std::move(window)), options_(options) {
  assert(chain_ != nullptr);
  assert(window_.region().domain_size() == chain_->num_states());
}

std::vector<double> KTimesEngine::Distribution(
    const sparse::ProbVector& initial) const {
  assert(initial.size() == chain_->num_states());
  return options_.mode == MatrixMode::kExplicit ? RunExplicit(initial)
                                                : RunImplicit(initial);
}

double KTimesEngine::Probability(const sparse::ProbVector& initial,
                                 uint32_t k) const {
  assert(k <= window_.num_times());
  return Distribution(initial)[k];
}

std::vector<double> KTimesEngine::RunImplicit(
    const sparse::ProbVector& initial) const {
  const uint32_t levels = window_.num_times() + 1;  // k in {0..K}

  // Row k of C holds the sub-distribution of worlds with exactly k window
  // visits so far. Rows are adaptive sparse/dense vectors — early rows
  // densify, high-k rows often stay nearly empty.
  std::vector<sparse::ProbVector> rows(
      levels, sparse::ProbVector::Zero(chain_->num_states()));
  rows[0] = initial;

  // Shift at t=0 if the window starts immediately.
  auto shift = [&]() {
    // new c_{k+1, s} += old c_{k, s} for s in region, top row cleared;
    // extract all levels first so the update is order-independent.
    std::vector<std::vector<std::pair<uint32_t, double>>> extracted(levels);
    for (uint32_t k = 0; k < levels; ++k) {
      extracted[k] = rows[k].ExtractEntriesIn(window_.region());
    }
    // Mass at level K stays at level K: a world can visit at most K = |T□|
    // window timestamps, and level K only receives mass at the last one, so
    // this branch only triggers for the final shift where it is a no-op for
    // correctness (keeps the distribution summing to one).
    for (uint32_t k = 0; k + 1 < levels; ++k) {
      rows[k + 1].AddEntries(extracted[k]);
    }
    rows[levels - 1].AddEntries(extracted[levels - 1]);
  };

  if (window_.ContainsTime(0)) shift();

  sparse::VecMatWorkspace ws;
  const Timestamp t_end = window_.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    for (uint32_t k = 0; k < levels; ++k) {
      if (rows[k].Support() == 0) continue;
      ws.Multiply(rows[k], chain_->matrix(), &rows[k]);
    }
    if (window_.ContainsTime(t)) shift();
  }

  std::vector<double> out(levels, 0.0);
  for (uint32_t k = 0; k < levels; ++k) out[k] = rows[k].Sum();
  return out;
}

std::vector<double> KTimesEngine::RunExplicit(
    const sparse::ProbVector& initial) const {
  const uint32_t n = chain_->num_states();
  const uint32_t K = window_.num_times();
  const uint32_t levels = K + 1;

  AugmentedMatrices aug =
      BuildKTimesMatrices(*chain_, window_.region(), K);
  sparse::ProbVector v = ExtendInitialKTimes(initial, window_, K);
  sparse::VecMatWorkspace ws;
  const Timestamp t_end = window_.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    const sparse::CsrMatrix& m =
        window_.ContainsTime(t) ? aug.plus : aug.minus;
    ws.Multiply(v, m, &v);
  }

  std::vector<double> out(levels, 0.0);
  v.ForEachNonZero([&](uint32_t i, double x) { out[i / n] += x; });
  return out;
}

}  // namespace core
}  // namespace ustdb
