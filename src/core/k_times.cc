#include "core/k_times.h"

#include <cassert>

namespace ustdb {
namespace core {

KTimesEngine::KTimesEngine(const markov::MarkovChain* chain,
                           QueryWindow window, KTimesOptions options)
    : chain_(chain), window_(std::move(window)), options_(options) {
  assert(chain_ != nullptr);
  assert(window_.region().domain_size() == chain_->num_states());
}

std::vector<double> KTimesEngine::Distribution(
    const sparse::ProbVector& initial) const {
  assert(initial.size() == chain_->num_states());
  return options_.mode == MatrixMode::kExplicit ? RunExplicit(initial)
                                                : RunImplicit(initial);
}

double KTimesEngine::Probability(const sparse::ProbVector& initial,
                                 uint32_t k) const {
  assert(k <= window_.num_times());
  return Distribution(initial)[k];
}

std::vector<double> KTimesEngine::RunImplicit(
    const sparse::ProbVector& initial) const {
  const uint32_t levels = window_.num_times() + 1;  // k in {0..K}

  // Row k of C holds the sub-distribution of worlds with exactly k window
  // visits so far. Rows are adaptive sparse/dense vectors — early rows
  // densify, high-k rows often stay nearly empty.
  std::vector<sparse::ProbVector> rows(
      levels, sparse::ProbVector::Zero(chain_->num_states()));
  rows[0] = initial;

  KTimesShift shift(levels);
  if (window_.ContainsTime(0)) shift.ShiftAll(window_.region(), &rows);

  sparse::VecMatWorkspace ws;
  const sparse::CsrMatrix& m = chain_->matrix();
  const sparse::CsrMatrix* mt = nullptr;  // fetched on first dense row
  const Timestamp t_end = window_.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    const bool in_window = window_.ContainsTime(t);
    for (uint32_t k = 0; k < levels; ++k) {
      if (in_window) shift.slot(k)->clear();
      if (rows[k].Support() == 0) continue;
      if (mt == nullptr && !rows[k].IsSparse()) mt = &chain_->transposed();
      if (in_window) {
        ws.MultiplyAndExtractEntries(rows[k], m, window_.region(), &rows[k],
                                     shift.slot(k), mt);
      } else {
        ws.Multiply(rows[k], m, &rows[k], mt);
      }
    }
    if (in_window) shift.Reinsert(&rows);
  }

  std::vector<double> out(levels, 0.0);
  for (uint32_t k = 0; k < levels; ++k) out[k] = rows[k].Sum();
  return out;
}

std::vector<double> KTimesEngine::RunExplicit(
    const sparse::ProbVector& initial) const {
  const uint32_t n = chain_->num_states();
  const uint32_t K = window_.num_times();
  const uint32_t levels = K + 1;

  AugmentedMatrices aug =
      BuildKTimesMatrices(*chain_, window_.region(), K);
  sparse::ProbVector v = ExtendInitialKTimes(initial, window_, K);
  sparse::VecMatWorkspace ws;
  const Timestamp t_end = window_.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    const sparse::CsrMatrix& m =
        window_.ContainsTime(t) ? aug.plus : aug.minus;
    ws.Multiply(v, m, &v);
  }

  std::vector<double> out(levels, 0.0);
  v.ForEachNonZero([&](uint32_t i, double x) { out[i / n] += x; });
  return out;
}

}  // namespace core
}  // namespace ustdb
