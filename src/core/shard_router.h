// Copyright 2026 the ustdb authors.
//
// ShardedDatabase — a Database partitioned into N shared-nothing shards
// keyed by the chain-similarity registry. Whole ChainClusters stay
// co-located on one shard, so the Section V-C bounds-then-refine plan
// never crosses shard boundaries: a shard either owns every object an
// envelope bounds or none of them. The QueryService runs one
// QueryExecutor per shard (own EngineCache, own worker slice) and
// scatter-gathers multi-chain requests; this class owns the placement,
// the global<->local id maps the router translates through, and the
// rebalance hook that keeps shard loads within a factor of ideal as the
// database grows.
//
// Ids: every chain and object keeps ONE stable global id — the id it
// would have in the equivalent unsharded Database — plus a local id
// inside its shard's Database. Global ids never change, not even across
// rebalance migrations, so they remain valid cache keys (the
// EngineCache's cluster stores key on leader ChainId) and valid wire
// ids for clients. Local ids are an implementation detail of one
// shard's Database and may be reassigned by a migration.

#ifndef USTDB_CORE_SHARD_ROUTER_H_
#define USTDB_CORE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/database.h"
#include "markov/markov_chain.h"
#include "sparse/types.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// Placement knobs of a ShardedDatabase.
struct ShardingOptions {
  /// Number of shards; 0 resolves through
  /// ShardedDatabase::ResolveNumShards (the USTDB_SHARDS environment
  /// variable, defaulting to 1).
  uint32_t num_shards = 0;

  /// Rebalance trigger: after an insertion, if the most loaded shard
  /// exceeds `load_factor` x the ideal (total load / num_shards), the
  /// database migrates one cluster toward the least loaded shard.
  /// Values <= 1.0 are clamped to 1.0 (rebalance on any improvement).
  double load_factor = 1.5;
};

/// \brief A Database partitioned into shared-nothing shards along
/// cluster-registry lines.
///
/// Construction mirrors the Database builder API (AddChain / AddObject /
/// AddObjectAt) and returns *global* ids, so existing loading code ports
/// by swapping the type. Internally every chain is registered twice:
///
///   - in `routing_db()`, a chain-only Database holding ALL chains in
///     global insertion order — its cluster registry and ChainIds are
///     bit-identical to the unsharded pipeline's, and it feeds the
///     router's global plan decisions (QueryPlanner over per-shard
///     object counts) without duplicating any object;
///   - in its shard's local Database, via AddChainToClusterOf with the
///     globally decided cluster assignment — never a re-run of the
///     similarity scan, whose kMaxLeaderScan cap could place a chain
///     differently over a shard's subset.
///
/// Placement: a chain founding a new global cluster lands on the least
/// loaded shard; a chain joining an existing cluster lands on that
/// cluster's shard (co-location invariant). Load is Σ over resident
/// objects of their chain's transition-matrix nnz — the dominant cost
/// of both evaluation plans scales with exactly that product.
///
/// Thread safety: none during construction/mutation (like Database).
/// Once loaded, all accessors are const and safe to share across the
/// per-shard executors. Structural mutation (AddChain/AddObject, which
/// can rebalance) while a QueryService is serving the instance is not
/// supported; a rebalance listener is provided so cache owners can
/// invalidate pointer-keyed entries of rebuilt shards. AppendObservation
/// is the one serving-time mutation: it touches exactly the owning
/// shard's Database (never the registry, never a rebalance), so the
/// service admits it by serializing against that single shard's
/// dispatch. Callers appending to the same shard concurrently must hold
/// that serialization themselves.
class ShardedDatabase {
 public:
  explicit ShardedDatabase(ShardingOptions options = {});

  /// \brief Resolves a shard-count request: `requested` > 0 wins;
  /// otherwise the USTDB_SHARDS environment variable (parsed as a
  /// positive integer) applies; otherwise 1. Mirrors the
  /// USTDB_KERNEL_ISA pattern so CI can pin a configuration for a full
  /// suite run.
  static uint32_t ResolveNumShards(uint32_t requested);

  /// \brief Registers a motion model; returns its stable global ChainId
  /// (identical to what an unsharded Database would have assigned).
  ChainId AddChain(markov::MarkovChain chain);

  /// \brief Adds an object to `chain`'s shard; returns its stable global
  /// ObjectId. Validation (pdf dimensions, normalization, strictly
  /// increasing times) is delegated to the shard Database and identical
  /// to the unsharded path. May trigger a rebalance migration.
  util::Result<ObjectId> AddObject(ChainId chain,
                                   std::vector<Observation> observations);

  /// Shorthand for the common single-observation-at-t0 case.
  util::Result<ObjectId> AddObjectAt(ChainId chain,
                                     sparse::ProbVector initial_pdf,
                                     Timestamp t = 0);

  /// \brief Appends an observation to global object `id`, routed to the
  /// owning shard. The version is allocated from ONE global counter and
  /// applied through Database::AppendObservationAtVersion, so every
  /// shard's epochs advance along the same global sequence — a gathered
  /// partial answer can name the exact global epoch it reflects, and
  /// epochs from different shards compare meaningfully (max-merge in the
  /// scatter-gather). A rejected append (validation failure) burns its
  /// allocated version: gaps are fine, monotonicity is what matters.
  util::Result<DataVersion> AppendObservation(ObjectId id, Observation obs);

  /// Newest globally allocated data version (0 = never appended). A
  /// shard's Database::data_version() is the newest version *applied
  /// there* and is always <= this.
  DataVersion data_version() const {
    return version_->load(std::memory_order_acquire);
  }

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  uint32_t num_chains() const { return routing_db_.num_chains(); }
  uint32_t num_objects() const {
    return static_cast<uint32_t>(object_shard_.size());
  }

  /// Shard-local Database `s`; local ids only.
  const Database& shard(uint32_t s) const { return shards_[s].db; }

  /// \brief Chain-only mirror of the whole database: every chain at its
  /// global id, the full cluster registry, zero objects. Feeds the
  /// router's QueryPlanner (cost fields that need object counts are
  /// supplied by the router from per-shard statistics).
  const Database& routing_db() const { return routing_db_; }

  uint32_t shard_of_chain(ChainId global) const {
    return chain_shard_[global];
  }
  uint32_t shard_of_object(ObjectId global) const {
    return object_shard_[global];
  }
  ChainId local_chain(ChainId global) const { return chain_local_[global]; }
  ObjectId local_object(ObjectId global) const {
    return object_local_[global];
  }
  ChainId global_chain(uint32_t shard, ChainId local) const {
    return shards_[shard].global_chains[local];
  }
  ObjectId global_object(uint32_t shard, ObjectId local) const {
    return shards_[shard].global_objects[local];
  }

  /// Σ objects x chain nnz currently resident on shard `s`.
  uint64_t shard_load(uint32_t s) const { return shards_[s].load; }

  /// Cluster migrations performed so far.
  uint64_t rebalances() const { return rebalances_; }

  /// \brief Registers a callback fired after each migration with the
  /// source and destination shard indices. Both shards' Databases were
  /// rebuilt (chain storage reallocated), so any cache keyed on chain
  /// pointers into them must be cleared. Replaces any prior listener.
  void SetRebalanceListener(
      std::function<void(uint32_t from, uint32_t to)> listener) {
    rebalance_listener_ = std::move(listener);
  }

 private:
  struct Shard {
    Database db;
    /// Global ids in local insertion order (index = local id). Always
    /// ascending: insertions arrive in global order and rebuilds re-add
    /// in ascending global order.
    std::vector<ChainId> global_chains;
    std::vector<ObjectId> global_objects;
    uint64_t load = 0;
  };

  /// One object's portable state, snapshotted across a migration rebuild
  /// (the old shard Databases are discarded before the new ones exist).
  struct ObjectSnapshot {
    ObjectId global = 0;
    ChainId chain = 0;  ///< global chain id
    std::vector<Observation> observations;
  };

  /// Appends `global_chain` to shard `s`'s Database, mirroring the
  /// global cluster assignment (joins the cluster leader's local
  /// cluster, which the co-location invariant guarantees is present),
  /// and updates the id maps.
  void PlaceChain(uint32_t s, ChainId global_chain);

  /// Migrates one whole cluster from the most loaded shard toward the
  /// least loaded one when the load factor is exceeded and a migration
  /// strictly improves the maximum; no-op otherwise.
  void MaybeRebalance();

  /// Rebuilds shard `s`'s Database from scratch: chains with
  /// chain_shard_[g] == s in ascending global order, then the matching
  /// objects from `snapshot` (ascending global order), refreshing local
  /// ids, reverse maps, and the load figure.
  void RebuildShard(uint32_t s, const std::vector<ObjectSnapshot>& snapshot);

  ShardingOptions options_;
  Database routing_db_;
  std::vector<Shard> shards_;

  // Global-id indexed maps (parallel to routing_db_ chains / insertion
  // order of objects).
  std::vector<uint32_t> chain_shard_;
  std::vector<ChainId> chain_local_;
  std::vector<uint32_t> object_shard_;
  std::vector<ObjectId> object_local_;
  /// Shard owning each global cluster (index into
  /// routing_db().chain_clusters()).
  std::vector<uint32_t> cluster_shard_;

  uint64_t rebalances_ = 0;
  std::function<void(uint32_t, uint32_t)> rebalance_listener_;
  /// Global ingest version counter; atomic so appends routed to
  /// *different* shards may allocate concurrently (each under its own
  /// shard's external serialization). Behind a unique_ptr to keep the
  /// class nothrow-movable (atomics are neither copyable nor movable);
  /// a ShardedDatabase is never moved while appends are in flight.
  std::unique_ptr<std::atomic<DataVersion>> version_ =
      std::make_unique<std::atomic<DataVersion>>(0);
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_SHARD_ROUTER_H_
