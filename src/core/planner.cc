#include "core/planner.h"

#include <algorithm>

namespace ustdb {
namespace core {

namespace {

/// Relative cost of a pass that materializes and multiplies the explicit
/// M−/M+ pair instead of running the implicit fold (measured ~1.5x in
/// bench_ablation_matrices; the exact constant only matters near the
/// break-even point).
constexpr double kExplicitModeFactor = 1.5;

/// Expected nonzeros of one initial pdf — the per-object dot-product cost
/// of the query-based plan. Object spreads are small (Table I uses 5); the
/// constant only needs to keep the dot term from vanishing entirely.
constexpr double kDotCost = 8.0;

/// The object-based plan decides thresholds early (true hit / true drop
/// cuts, Section V-A): on average a τ-run stops well before t_end. The
/// discount keeps OB competitive for threshold queries on mid-size
/// classes, mirroring the paper's observation that early termination is
/// the OB plan's edge.
constexpr double kThresholdEarlyStopFactor = 0.5;

}  // namespace

double QueryPlanner::PassCost(const markov::MarkovChain& chain,
                              const QueryWindow& window, MatrixMode mode) {
  // Temporal reach: every plan must propagate from t=0 to max(T□).
  const double transitions = std::max<double>(1.0, window.t_end());
  const double entries_per_step =
      std::max<double>(1.0, static_cast<double>(chain.matrix().nnz()));
  const double mode_factor =
      mode == MatrixMode::kExplicit ? kExplicitModeFactor : 1.0;
  return transitions * entries_per_step * mode_factor;
}

PlanDecision QueryPlanner::Choose(ChainId chain, const QueryRequest& request,
                                  uint32_t num_objects) const {
  PlanDecision decision;
  if (request.plan != PlanChoice::kAuto) {
    decision.plan = request.plan == PlanChoice::kObjectBased
                        ? Plan::kObjectBased
                        : Plan::kQueryBased;
    decision.forced = true;
    return decision;
  }

  const double pass =
      PassCost(db_->chain(chain), request.window, request.matrix_mode);
  const double n = static_cast<double>(num_objects);

  // OB: one full pass per object — discounted when τ-termination applies.
  decision.cost.object_based =
      n * pass *
      (request.predicate == PredicateKind::kThresholdExists
           ? kThresholdEarlyStopFactor
           : 1.0);
  // QB: one shared backward pass, then a sparse dot product per object.
  decision.cost.query_based = pass + n * kDotCost;

  decision.plan = decision.cost.object_based <= decision.cost.query_based
                      ? Plan::kObjectBased
                      : Plan::kQueryBased;
  return decision;
}

}  // namespace core
}  // namespace ustdb
