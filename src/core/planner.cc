#include "core/planner.h"

#include <algorithm>
#include <map>

namespace ustdb {
namespace core {

namespace {

/// Relative cost of a pass that materializes and multiplies the explicit
/// M−/M+ pair instead of running the implicit fold (measured ~1.5x in
/// bench_ablation_matrices; the exact constant only matters near the
/// break-even point).
constexpr double kExplicitModeFactor = 1.5;

/// Expected nonzeros of one initial pdf — the per-object dot-product cost
/// of the query-based plan. Object spreads are small (Table I uses 5); the
/// constant only needs to keep the dot term from vanishing entirely.
constexpr double kDotCost = 8.0;

/// The object-based plan decides thresholds early (true hit / true drop
/// cuts, Section V-A): on average a τ-run stops well before t_end. The
/// discount keeps OB competitive for threshold queries on mid-size
/// classes, mirroring the paper's observation that early termination is
/// the OB plan's edge.
constexpr double kThresholdEarlyStopFactor = 0.5;

/// Relative cost of one interval bound pass over a cluster envelope vs. a
/// plain backward pass over one member: every step solves the
/// fractional-greedy LP per active row (the executor requests upper-only
/// passes, measured ~2.5x a member pass in bench_cluster_pruning steady
/// state). Deliberately kept higher than measured: it also absorbs the
/// per-query fixed costs outside any pass (cluster partition, bound dot
/// products, refine-engine setup), and the bench shows the plan is a
/// wash at the break-even this factor induces (~10-14 chains).
constexpr double kIntervalPassFactor = 5.0;

/// Envelope nnz relative to one member chain's nnz: the union support of
/// clustered (similar) chains is modestly wider than any single member's.
constexpr double kEnvelopeNnzFactor = 1.25;

/// Expected share of the query-based cost the refine stage still pays.
/// Dominated by chain fan-out, not object count: a handful of undecided
/// objects scattered across chains pays one backward pass per touched
/// chain, so the discount is deliberately conservative — it keeps the
/// bound pass from engaging on small chain counts where refinement
/// re-pays most per-chain passes anyway (measured on
/// bench_cluster_pruning: at 8 chains bounds loses, from ~16 it wins).
/// PruneStats.objects_refined reports the realized fraction.
constexpr double kExpectedRefineFraction = 0.5;

}  // namespace

double QueryPlanner::PassCost(const markov::MarkovChain& chain,
                              const QueryWindow& window, MatrixMode mode) {
  // Temporal reach: every plan must propagate from t=0 to max(T□).
  const double transitions = std::max<double>(1.0, window.t_end());
  const double entries_per_step =
      std::max<double>(1.0, static_cast<double>(chain.matrix().nnz()));
  const double mode_factor =
      mode == MatrixMode::kExplicit ? kExplicitModeFactor : 1.0;
  return transitions * entries_per_step * mode_factor;
}

PlanDecision QueryPlanner::Choose(ChainId chain, const QueryRequest& request,
                                  uint32_t num_objects) const {
  if (request.plan == PlanChoice::kObjectBased ||
      request.plan == PlanChoice::kQueryBased) {
    PlanDecision decision;
    decision.plan = request.plan == PlanChoice::kObjectBased
                        ? Plan::kObjectBased
                        : Plan::kQueryBased;
    decision.forced = true;
    return decision;
  }
  // A solo run is a batch group of one: same cost model, one member.
  // kBoundsThenRefine reaches here only when the executor fell back from
  // the bound pass (ineligible window) — the per-chain decision is then
  // cost-based, exactly as under kAuto.
  const MemberLoad load{request.predicate, num_objects};
  return PlanBatch(chain, request.window, request.matrix_mode, {&load, 1});
}

PlanDecision QueryPlanner::PlanBatch(
    ChainId chain, const QueryWindow& window, MatrixMode mode,
    std::span<const MemberLoad> members) const {
  PlanDecision decision;
  const double pass = PassCost(db_->chain(chain), window, mode);

  // OB: one full pass per object per member — discounted when
  // τ-termination applies. QB: one backward pass shared by the whole
  // group, then a sparse dot product per object per member.
  double object_based = 0.0;
  double dots = 0.0;
  for (const MemberLoad& member : members) {
    const double n = static_cast<double>(member.num_objects);
    object_based +=
        n * pass *
        (member.predicate == PredicateKind::kThresholdExists
             ? kThresholdEarlyStopFactor
             : 1.0);
    dots += n * kDotCost;
  }
  decision.cost.object_based = object_based;
  decision.cost.query_based = pass + dots;

  decision.plan = decision.cost.object_based <= decision.cost.query_based
                      ? Plan::kObjectBased
                      : Plan::kQueryBased;
  return decision;
}

PlanDecision QueryPlanner::ChooseThresholdPlan(
    const QueryWindow& window, MatrixMode mode, PlanChoice directive,
    std::span<const ChainLoad> loads) const {
  PlanDecision decision;

  // Aggregate the per-chain alternatives: each chain contributes its own
  // cheaper side to `best_single`, so the bound pass competes against the
  // plan mix the executor would otherwise run.
  double best_single = 0.0;
  double total_qb = 0.0;
  double bound_dots = 0.0;
  std::map<uint32_t, double> cluster_pass;  // cluster index -> bound cost
  for (const ChainLoad& load : loads) {
    const MemberLoad member{PredicateKind::kThresholdExists,
                            load.num_objects};
    const PlanDecision per_chain =
        PlanBatch(load.chain, window, mode, {&member, 1});
    decision.cost.object_based += per_chain.cost.object_based;
    decision.cost.query_based += per_chain.cost.query_based;
    best_single += std::min(per_chain.cost.object_based,
                            per_chain.cost.query_based);
    total_qb += per_chain.cost.query_based;
    // One upper-bound dot per object: the executor requests upper-only
    // bound passes and its drop test never reads lo.
    bound_dots += kDotCost * load.num_objects;

    // One interval pass per cluster, priced from its widest member (the
    // envelope's union support is at least that wide).
    const uint32_t cluster = db_->cluster_of(load.chain);
    const double member_pass =
        PassCost(db_->chain(load.chain), window, MatrixMode::kImplicit);
    double& pass = cluster_pass[cluster];
    pass = std::max(pass, kIntervalPassFactor * kEnvelopeNnzFactor *
                              member_pass);
  }
  double bound_passes = 0.0;
  for (const auto& [cluster, pass] : cluster_pass) bound_passes += pass;
  decision.cost.bounds_then_refine =
      bound_passes + bound_dots + kExpectedRefineFraction * total_qb;

  if (directive == PlanChoice::kBoundsThenRefine) {
    decision.plan = Plan::kBoundsThenRefine;
    decision.forced = true;
    return decision;
  }
  if (!loads.empty() && decision.cost.bounds_then_refine < best_single) {
    decision.plan = Plan::kBoundsThenRefine;
  } else {
    decision.plan =
        decision.cost.object_based <= decision.cost.query_based
            ? Plan::kObjectBased
            : Plan::kQueryBased;
  }
  return decision;
}

}  // namespace core
}  // namespace ustdb
