#include "core/planner.h"

#include <algorithm>

namespace ustdb {
namespace core {

namespace {

/// Relative cost of a pass that materializes and multiplies the explicit
/// M−/M+ pair instead of running the implicit fold (measured ~1.5x in
/// bench_ablation_matrices; the exact constant only matters near the
/// break-even point).
constexpr double kExplicitModeFactor = 1.5;

/// Expected nonzeros of one initial pdf — the per-object dot-product cost
/// of the query-based plan. Object spreads are small (Table I uses 5); the
/// constant only needs to keep the dot term from vanishing entirely.
constexpr double kDotCost = 8.0;

/// The object-based plan decides thresholds early (true hit / true drop
/// cuts, Section V-A): on average a τ-run stops well before t_end. The
/// discount keeps OB competitive for threshold queries on mid-size
/// classes, mirroring the paper's observation that early termination is
/// the OB plan's edge.
constexpr double kThresholdEarlyStopFactor = 0.5;

}  // namespace

double QueryPlanner::PassCost(const markov::MarkovChain& chain,
                              const QueryWindow& window, MatrixMode mode) {
  // Temporal reach: every plan must propagate from t=0 to max(T□).
  const double transitions = std::max<double>(1.0, window.t_end());
  const double entries_per_step =
      std::max<double>(1.0, static_cast<double>(chain.matrix().nnz()));
  const double mode_factor =
      mode == MatrixMode::kExplicit ? kExplicitModeFactor : 1.0;
  return transitions * entries_per_step * mode_factor;
}

PlanDecision QueryPlanner::Choose(ChainId chain, const QueryRequest& request,
                                  uint32_t num_objects) const {
  if (request.plan != PlanChoice::kAuto) {
    PlanDecision decision;
    decision.plan = request.plan == PlanChoice::kObjectBased
                        ? Plan::kObjectBased
                        : Plan::kQueryBased;
    decision.forced = true;
    return decision;
  }
  // A solo run is a batch group of one: same cost model, one member.
  const MemberLoad load{request.predicate, num_objects};
  return PlanBatch(chain, request.window, request.matrix_mode, {&load, 1});
}

PlanDecision QueryPlanner::PlanBatch(
    ChainId chain, const QueryWindow& window, MatrixMode mode,
    std::span<const MemberLoad> members) const {
  PlanDecision decision;
  const double pass = PassCost(db_->chain(chain), window, mode);

  // OB: one full pass per object per member — discounted when
  // τ-termination applies. QB: one backward pass shared by the whole
  // group, then a sparse dot product per object per member.
  double object_based = 0.0;
  double dots = 0.0;
  for (const MemberLoad& member : members) {
    const double n = static_cast<double>(member.num_objects);
    object_based +=
        n * pass *
        (member.predicate == PredicateKind::kThresholdExists
             ? kThresholdEarlyStopFactor
             : 1.0);
    dots += n * kDotCost;
  }
  decision.cost.object_based = object_based;
  decision.cost.query_based = pass + dots;

  decision.plan = decision.cost.object_based <= decision.cost.query_based
                      ? Plan::kObjectBased
                      : Plan::kQueryBased;
  return decision;
}

}  // namespace core
}  // namespace ustdb
