#include "core/independent_baseline.h"

#include <cassert>

namespace ustdb {
namespace core {

std::vector<double> IndependentBaseline::WindowMarginals(
    const sparse::ProbVector& initial) const {
  assert(initial.size() == chain_->num_states());
  std::vector<double> out;
  out.reserve(window_.num_times());

  sparse::ProbVector v = initial;
  sparse::VecMatWorkspace ws;
  if (window_.ContainsTime(0)) out.push_back(v.MassIn(window_.region()));
  const Timestamp t_end = window_.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    // Deliberately no transpose argument: this is an accuracy baseline,
    // not a hot path, and it should not force chains to materialize Mᵀ.
    if (window_.ContainsTime(t)) {
      // Fused: the marginal is measured during the product's own pass.
      out.push_back(
          ws.MultiplyAndMassIn(v, chain_->matrix(), window_.region(), &v));
    } else {
      ws.Multiply(v, chain_->matrix(), &v);
    }
  }
  return out;
}

double IndependentBaseline::ExistsProbability(
    const sparse::ProbVector& initial) const {
  double miss = 1.0;
  for (double m : WindowMarginals(initial)) miss *= (1.0 - m);
  return 1.0 - miss;
}

}  // namespace core
}  // namespace ustdb
