#include "core/object_based.h"

#include <algorithm>
#include <cassert>

namespace ustdb {
namespace core {

ObjectBasedEngine::ObjectBasedEngine(const markov::MarkovChain* chain,
                                     QueryWindow window,
                                     ObjectBasedOptions options)
    : chain_(chain), window_(std::move(window)), options_(options) {
  assert(chain_ != nullptr);
  assert(window_.region().domain_size() == chain_->num_states());
}

const AugmentedMatrices& ObjectBasedEngine::augmented() const {
  if (!augmented_) {
    augmented_ = BuildAbsorbingMatrices(*chain_, window_.region());
  }
  return *augmented_;
}

double ObjectBasedEngine::ExistsProbability(const sparse::ProbVector& initial,
                                            ObRunStats* stats) const {
  assert(initial.size() == chain_->num_states());
  if (options_.mode == MatrixMode::kExplicit) {
    return RunExplicit(initial, stats);
  }
  // Plain evaluation: never stop on accumulated hits, optionally stop when
  // the residual can no longer matter.
  return RunImplicit(initial, /*stop_hit=*/2.0,
                     /*stop_residual=*/options_.epsilon, stats);
}

ThresholdDecision ObjectBasedEngine::ExistsDecision(
    const sparse::ProbVector& initial, double tau, ObRunStats* stats) const {
  // RunImplicit stops as soon as hit >= stop_hit (decision: yes) or
  // residual < stop_residual relative margin; we encode the τ-decision by
  // running with both stops armed and comparing the exact outcome.
  ObRunStats local;
  ObRunStats* s = stats != nullptr ? stats : &local;
  // hit >= tau  -> true hit;  hit + residual < tau -> true drop.
  sparse::ProbVector v = initial;
  sparse::VecMatWorkspace ws;
  const sparse::CsrMatrix& m = chain_->matrix();
  // The gather kernel's transpose is fetched only once the vector goes
  // dense, so sparse-support runs never force the O(nnz) transpose build
  // (it is memoized per chain once any run does).
  const sparse::CsrMatrix* mt = nullptr;
  double hit = 0.0;
  if (window_.ContainsTime(0)) {
    hit += v.ExtractMassIn(window_.region());
  }
  s->max_support = std::max(s->max_support, v.Support());
  const Timestamp t_end = window_.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    if (hit >= tau) {
      s->early_terminated = true;
      return ThresholdDecision::kYes;
    }
    const double residual = v.Sum();
    if (hit + residual < tau) {
      s->early_terminated = true;
      return ThresholdDecision::kNo;
    }
    if (mt == nullptr && !v.IsSparse()) mt = &chain_->transposed();
    if (window_.ContainsTime(t)) {
      hit += ws.MultiplyAndExtract(v, m, window_.region(), &v, mt);
    } else {
      ws.Multiply(v, m, &v, mt);
    }
    ++s->transitions;
    s->max_support = std::max(s->max_support, v.Support());
  }
  return hit >= tau ? ThresholdDecision::kYes : ThresholdDecision::kNo;
}

double ObjectBasedEngine::RunImplicit(const sparse::ProbVector& initial,
                                      double stop_hit, double stop_residual,
                                      ObRunStats* stats) const {
  ObRunStats local;
  ObRunStats* s = stats != nullptr ? stats : &local;

  sparse::ProbVector v = initial;
  sparse::VecMatWorkspace ws;
  const sparse::CsrMatrix& m = chain_->matrix();
  const sparse::CsrMatrix* mt = nullptr;  // fetched on first dense step
  double hit = 0.0;
  // Special case t=0 ∈ T□: initial window mass is already a true hit.
  if (window_.ContainsTime(0)) {
    hit += v.ExtractMassIn(window_.region());
  }
  s->max_support = std::max(s->max_support, v.Support());

  const Timestamp t_end = window_.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    if (hit >= stop_hit) {
      s->early_terminated = true;
      break;
    }
    if (stop_residual > 0.0 && v.Sum() < stop_residual) {
      // Residual worlds can no longer change the answer by more than
      // stop_residual; treat them as true drops.
      s->early_terminated = true;
      break;
    }
    if (mt == nullptr && !v.IsSparse()) mt = &chain_->transposed();
    if (window_.ContainsTime(t)) {
      // Fused transition + ◆-redirection: the product's materialization
      // pass extracts the window mass, replacing the second full sweep.
      hit += ws.MultiplyAndExtract(v, m, window_.region(), &v, mt);
    } else {
      ws.Multiply(v, m, &v, mt);
    }
    ++s->transitions;
    s->max_support = std::max(s->max_support, v.Support());
  }
  return hit;
}

double ObjectBasedEngine::RunExplicit(const sparse::ProbVector& initial,
                                      ObRunStats* stats) const {
  ObRunStats local;
  ObRunStats* s = stats != nullptr ? stats : &local;

  const AugmentedMatrices& aug = augmented();
  sparse::ProbVector v = ExtendInitialAbsorbing(initial, window_);
  sparse::VecMatWorkspace ws;
  const uint32_t diamond = chain_->num_states();
  const Timestamp t_end = window_.t_end();
  for (Timestamp t = 1; t <= t_end; ++t) {
    const sparse::CsrMatrix& m =
        window_.ContainsTime(t) ? aug.plus : aug.minus;
    ws.Multiply(v, m, &v);
    ++s->transitions;
    s->max_support = std::max(s->max_support, v.Support());
  }
  return v.Get(diamond);
}

}  // namespace core
}  // namespace ustdb
