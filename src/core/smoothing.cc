#include "core/smoothing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace ustdb {
namespace core {

namespace {

util::Status ValidateObservations(const markov::MarkovChain& chain,
                                  const std::vector<Observation>& obs,
                                  Timestamp t_horizon) {
  if (obs.empty()) {
    return util::Status::InvalidArgument("at least one observation required");
  }
  for (size_t i = 0; i < obs.size(); ++i) {
    if (obs[i].pdf.size() != chain.num_states()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "observation %zu has pdf dimension %u, expected %u", i,
          obs[i].pdf.size(), chain.num_states()));
    }
    if (obs[i].pdf.Sum() <= 0.0) {
      return util::Status::InvalidArgument(
          util::StringPrintf("observation %zu has zero mass", i));
    }
    if (i > 0 && obs[i].time <= obs[i - 1].time) {
      return util::Status::InvalidArgument(
          "observations must be sorted by strictly increasing time");
    }
  }
  if (t_horizon < obs.front().time) {
    return util::Status::InvalidArgument(
        "horizon ends before the first observation");
  }
  return util::Status::OK();
}

/// Index of the observation at absolute time t, or -1.
int ObservationAt(const std::vector<Observation>& obs, Timestamp t) {
  for (size_t i = 0; i < obs.size(); ++i) {
    if (obs[i].time == t) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

util::Result<SmoothingResult> SmoothedMarginals(
    const markov::MarkovChain& chain,
    const std::vector<Observation>& observations, Timestamp t_horizon) {
  USTDB_RETURN_NOT_OK(ValidateObservations(chain, observations, t_horizon));
  const uint32_t n = chain.num_states();
  const Timestamp t_start = observations.front().time;
  const Timestamp t_last = std::max(t_horizon, observations.back().time);
  const uint32_t len = t_last - t_start + 1;

  // Forward pass: alpha[i] ∝ P(o(t_start+i) = s, obs up to that time);
  // rescaled to mass one at every step for numerical stability.
  std::vector<sparse::ProbVector> alpha(len);
  sparse::VecMatWorkspace ws;
  alpha[0] = observations.front().pdf;
  USTDB_RETURN_NOT_OK(alpha[0].Normalize());
  for (uint32_t i = 1; i < len; ++i) {
    ws.Multiply(alpha[i - 1], chain.matrix(), &alpha[i]);
    const int obs_idx = ObservationAt(observations, t_start + i);
    if (obs_idx >= 0) {
      USTDB_RETURN_NOT_OK(
          alpha[i].PointwiseMultiply(observations[obs_idx].pdf));
      if (alpha[i].Sum() <= 0.0) {
        return util::Status::Inconsistent(util::StringPrintf(
            "observation at t=%u is inconsistent with all possible worlds",
            t_start + i));
      }
      USTDB_RETURN_NOT_OK(alpha[i].Normalize());
    }
  }

  // Backward pass: beta[i][s] ∝ P(obs after t_start+i | o(t_start+i) = s);
  // rescaled likewise. beta is a likelihood vector, not a distribution,
  // but ProbVector only requires non-negative entries.
  std::vector<sparse::ProbVector> beta(len);
  beta[len - 1] =
      sparse::ProbVector::FromDense(std::vector<double>(n, 1.0)).ValueOrDie();
  for (uint32_t i = len - 1; i > 0; --i) {
    sparse::ProbVector tmp = beta[i];
    const int obs_idx = ObservationAt(observations, t_start + i);
    if (obs_idx >= 0) {
      USTDB_RETURN_NOT_OK(tmp.PointwiseMultiply(observations[obs_idx].pdf));
    }
    ws.Multiply(tmp, chain.transposed(), &beta[i - 1]);
    const double scale = beta[i - 1].MaxValue();
    if (scale > 0.0) beta[i - 1].Scale(1.0 / scale);
  }

  SmoothingResult result;
  result.t_start = t_start;
  const uint32_t report = t_horizon - t_start + 1;
  result.marginals.reserve(report);
  for (uint32_t i = 0; i < report; ++i) {
    sparse::ProbVector gamma = alpha[i];
    USTDB_RETURN_NOT_OK(gamma.PointwiseMultiply(beta[i]));
    util::Status st = gamma.Normalize();
    if (!st.ok()) {
      return util::Status::Inconsistent(
          "observations admit no possible world at t=" +
          std::to_string(t_start + i));
    }
    result.marginals.push_back(std::move(gamma));
  }
  return result;
}

util::Result<ViterbiResult> MostLikelyTrajectory(
    const markov::MarkovChain& chain,
    const std::vector<Observation>& observations, Timestamp t_horizon) {
  USTDB_RETURN_NOT_OK(ValidateObservations(chain, observations, t_horizon));
  const uint32_t n = chain.num_states();
  const Timestamp t_start = observations.front().time;
  const Timestamp t_last = std::max(t_horizon, observations.back().time);
  const uint32_t len = t_last - t_start + 1;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  // Max-product in log space. delta[j] = best log-probability of any path
  // ending at j; psi[i][j] = predecessor of j at step i.
  std::vector<double> delta(n, kNegInf);
  sparse::ProbVector first = observations.front().pdf;
  USTDB_RETURN_NOT_OK(first.Normalize());
  first.ForEachNonZero(
      [&](uint32_t s, double p) { delta[s] = std::log(p); });

  std::vector<std::vector<uint32_t>> psi(
      len, std::vector<uint32_t>(0));  // psi[0] unused
  std::vector<double> next(n, kNegInf);
  // Log of the total surviving mass (product of conditioning masses) for
  // the posterior normalization, computed by a parallel forward pass.
  sparse::ProbVector alpha = first;
  sparse::VecMatWorkspace ws;
  double log_mass = 0.0;

  for (uint32_t i = 1; i < len; ++i) {
    std::fill(next.begin(), next.end(), kNegInf);
    psi[i].assign(n, 0);
    for (uint32_t s = 0; s < n; ++s) {
      if (delta[s] == kNegInf) continue;
      auto idx = chain.matrix().RowIndices(s);
      auto val = chain.matrix().RowValues(s);
      for (size_t k = 0; k < idx.size(); ++k) {
        const double cand = delta[s] + std::log(val[k]);
        if (cand > next[idx[k]]) {
          next[idx[k]] = cand;
          psi[i][idx[k]] = s;
        }
      }
    }
    const int obs_idx = ObservationAt(observations, t_start + i);
    if (obs_idx >= 0) {
      for (uint32_t j = 0; j < n; ++j) {
        if (next[j] == kNegInf) continue;
        const double o = observations[obs_idx].pdf.Get(j);
        next[j] = o > 0.0 ? next[j] + std::log(o) : kNegInf;
      }
    }
    delta.swap(next);

    ws.Multiply(alpha, chain.matrix(), &alpha);
    if (obs_idx >= 0) {
      USTDB_RETURN_NOT_OK(
          alpha.PointwiseMultiply(observations[obs_idx].pdf));
      const double mass = alpha.Sum();
      if (mass <= 0.0) {
        return util::Status::Inconsistent(util::StringPrintf(
            "observation at t=%u is inconsistent with all possible worlds",
            t_start + i));
      }
      log_mass += std::log(mass);
      alpha.Scale(1.0 / mass);
    }
  }

  // Termination: best final state (first index on ties).
  uint32_t best = 0;
  double best_log = kNegInf;
  for (uint32_t j = 0; j < n; ++j) {
    if (delta[j] > best_log) {
      best_log = delta[j];
      best = j;
    }
  }
  if (best_log == kNegInf) {
    return util::Status::Inconsistent(
        "observations admit no possible world");
  }

  ViterbiResult result;
  result.t_start = t_start;
  result.path.assign(len, 0);
  result.path[len - 1] = best;
  for (uint32_t i = len - 1; i > 0; --i) {
    result.path[i - 1] = psi[i][result.path[i]];
  }
  result.posterior_probability = std::exp(best_log - log_mass);
  return result;
}

}  // namespace core
}  // namespace ustdb
