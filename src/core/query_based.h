// Copyright 2026 the ustdb authors.
//
// QueryBasedEngine — Section V-B's reverse query processing: starting from
// the query window, walk backward in time with the transposed matrices
// (M±)ᵀ to obtain one vector v where v[s] is the probability that an object
// *starting at state s* satisfies the query. Every object is then answered
// with a single sparse dot product P∃(o) = P(o,0) · v, which amortizes the
// backward pass over the whole database: O(|D| + |S_reach|²·δt).

#ifndef USTDB_CORE_QUERY_BASED_H_
#define USTDB_CORE_QUERY_BASED_H_

#include "core/absorbing.h"
#include "core/object_based.h"
#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"

namespace ustdb {
namespace core {

/// Tuning knobs for the query-based engine.
struct QueryBasedOptions {
  MatrixMode mode = MatrixMode::kImplicit;
};

/// \brief Evaluates PST∃Q for one chain and one window with a single
/// backward pass shared by all objects that follow this chain.
class QueryBasedEngine {
 public:
  /// Performs the backward pass immediately.
  /// \pre window.region().domain_size() == chain->num_states(); `chain`
  /// must outlive the engine.
  QueryBasedEngine(const markov::MarkovChain* chain, QueryWindow window,
                   QueryBasedOptions options = {});

  /// \brief Incremental window-shift extension: builds the engine for
  /// `window` = base.window() shifted forward by `delta` steps (same
  /// region elements, every time offset by +delta) in O(delta)
  /// transitions instead of re-running the whole backward pass. The
  /// identity: a cold pass for the shifted window replays the base
  /// pass's steps verbatim above t = delta (ContainsTime aligns under
  /// the relabeling), and below that every time lies before the shifted
  /// window, so the remaining delta steps are pure Mᵀ products applied
  /// to the base's start vector — which already folds the 0 ∈ T□ clamp,
  /// making the first product equal the cold pass's fused
  /// MultiplyClamped step. Implicit mode only (the explicit pass
  /// projects away the absorbed mass, losing the state the extension
  /// would need); results match a cold build bit-identically or within
  /// the 1e-12 kernel-parity margin.
  /// \pre base is implicit-mode; `window` is base.window() shifted by
  /// `delta` >= 1 (the caller — EngineCache's shift-base lookup —
  /// verifies this).
  QueryBasedEngine(const QueryBasedEngine& base, QueryWindow window,
                   Timestamp delta);

  /// \brief The per-start-state satisfaction vector v at t=0: v[s] =
  /// probability that an object located at s at time 0 (with certainty)
  /// intersects the window. Already accounts for 0 ∈ T□.
  const sparse::ProbVector& start_vector() const { return start_vector_; }

  /// \brief P∃(o, S□, T□) = P(o,0) · v — O(support of P(o,0)).
  double ExistsProbability(const sparse::ProbVector& initial) const {
    return initial.Dot(start_vector_);
  }

  /// Number of backward transitions executed (== t_end).
  uint32_t transitions() const { return transitions_; }

  const QueryWindow& window() const { return window_; }
  const markov::MarkovChain& chain() const { return *chain_; }

 private:
  void RunBackwardImplicit();
  void RunBackwardExplicit();

  const markov::MarkovChain* chain_;
  QueryWindow window_;
  QueryBasedOptions options_;
  sparse::ProbVector start_vector_;
  uint32_t transitions_ = 0;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_QUERY_BASED_H_
