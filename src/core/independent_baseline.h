// Copyright 2026 the ustdb authors.
//
// IndependentBaseline — the model the paper argues *against*: treat the
// object's location at each timestamp as an independent random variable
// (the snapshot models of [8], [9], [16], [17], [19], [20]). Under that
// assumption, P∃ = 1 − Π_{t∈T□} (1 − P(o(t) ∈ S□)), which over-counts
// worlds that stay in the window for several timestamps and converges to 1
// for long windows (Figure 1's discussion; quantified by Figure 9(d)).
//
// This engine exists to regenerate Figure 9(d): it is intentionally the
// *wrong* semantics, implemented on the same substrate.

#ifndef USTDB_CORE_INDEPENDENT_BASELINE_H_
#define USTDB_CORE_INDEPENDENT_BASELINE_H_

#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"

namespace ustdb {
namespace core {

/// \brief PST∃Q under the (incorrect) temporal-independence assumption.
class IndependentBaseline {
 public:
  /// \pre window.region().domain_size() == chain->num_states().
  IndependentBaseline(const markov::MarkovChain* chain, QueryWindow window)
      : chain_(chain), window_(std::move(window)) {}

  /// \brief 1 − Π_{t∈T□} (1 − m_t), where m_t is the marginal window mass
  /// of the object's distribution at time t (marginals still propagate
  /// through the chain; only the *combination* ignores dependence).
  double ExistsProbability(const sparse::ProbVector& initial) const;

  /// \brief The per-timestamp marginals m_t themselves (Figure 1(b)'s
  /// ingredients; exposed for the accuracy experiment).
  std::vector<double> WindowMarginals(const sparse::ProbVector& initial) const;

 private:
  const markov::MarkovChain* chain_;
  QueryWindow window_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_INDEPENDENT_BASELINE_H_
