// Copyright 2026 the ustdb authors.
//
// Database — the set D of uncertain spatio-temporal objects. Each object
// references a Markov chain (its motion model; Section V-C allows different
// chains per object class) and carries one or more observations.

#ifndef USTDB_CORE_DATABASE_H_
#define USTDB_CORE_DATABASE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/multi_observation.h"
#include "markov/markov_chain.h"
#include "sparse/types.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// \brief One uncertain moving object: a motion model reference plus its
/// observation history (sorted by time; the first observation initializes
/// query processing).
struct UncertainObject {
  ObjectId id = 0;
  ChainId chain = 0;
  std::vector<Observation> observations;

  /// Convenience: the earliest observation's pdf (the P(o, 0) of Section V
  /// when there is a single observation at t=0).
  const sparse::ProbVector& initial_pdf() const {
    return observations.front().pdf;
  }

  /// True when the object has exactly one observation (Section V setting).
  bool single_observation() const { return observations.size() == 1; }

  /// \brief True when the object bypasses both single-observation plans
  /// and runs the Section VI multi-observation engine: several
  /// observations, or a single one not at t=0. The executor's census and
  /// the shard router's global plan census share this rule so their
  /// ChainLoads can never drift apart.
  bool needs_multi_observation_engine() const {
    return !single_observation() || observations.front().time != 0;
  }
};

/// \brief One cluster of similar motion models (Section V-C). Clusters are
/// built by greedy leader clustering on transition-matrix distance: the
/// first chain of a cluster is its leader, and every later chain joins the
/// first cluster whose leader it is close to (mean per-row L1 distance).
struct ChainCluster {
  ChainId leader = 0;            ///< first member; the cluster's exemplar
  std::vector<ChainId> members;  ///< ascending; includes the leader
};

/// \brief In-memory database of uncertain objects and their motion models.
///
/// Objects referencing the same ChainId form a class (buses / trucks / cars
/// in the paper's discussion); the query-based engine amortizes its backward
/// pass across each class. Similar classes are further grouped into
/// ChainClusters so the bounds-then-refine plan can bound many classes with
/// one interval envelope.
class Database {
 public:
  Database() = default;

  /// \brief Registers a motion model; returns its ChainId. Also assigns the
  /// chain to a cluster: it joins the first existing cluster whose leader
  /// has the same state count and a mean per-row L1 transition distance at
  /// most kChainClusterL1Threshold, else it starts a new cluster.
  ChainId AddChain(markov::MarkovChain chain);

  /// \brief Registers a motion model with a dictated cluster assignment:
  /// the chain joins the cluster of existing chain `join`, or founds a new
  /// cluster when `join` is nullopt. No similarity scan runs. Used by
  /// ShardedDatabase to mirror the global cluster registry into each
  /// shard's local Database exactly — the global greedy scan is capped
  /// (kMaxLeaderScan), so re-running it over a shard's subset of chains
  /// could place a chain differently than the unsharded registry did.
  ChainId AddChainToClusterOf(markov::MarkovChain chain,
                              std::optional<ChainId> join);

  /// \brief Adds an object. Observations must be sorted by strictly
  /// increasing time, non-empty, with pdfs matching the chain's state count;
  /// pdfs are normalized on insertion. Returns the new ObjectId.
  util::Result<ObjectId> AddObject(ChainId chain,
                                   std::vector<Observation> observations);

  /// Shorthand for the common single-observation-at-t0 case.
  util::Result<ObjectId> AddObjectAt(ChainId chain,
                                     sparse::ProbVector initial_pdf,
                                     Timestamp t = 0);

  /// \brief Re-inserts observations that already passed AddObject once,
  /// bit-exactly: no validation and — critically — no re-normalization,
  /// since Normalize() scales by 1/Sum() and is not floating-point
  /// idempotent. Used by ShardedDatabase's rebalance rebuild so a
  /// migrated object's pdfs keep the exact bits of the original
  /// insertion. The caller vouches the observations came out of a
  /// Database with a matching chain dimension.
  ObjectId ReAddNormalizedObject(ChainId chain,
                                 std::vector<Observation> observations);

  /// \brief Appends one observation to an existing object's history and
  /// returns the DataVersion the mutation was stamped with. The ingest
  /// path of the continuous-query pipeline: the pdf is validated against
  /// the object's chain and normalized exactly like AddObject's, and the
  /// sorted-history invariant is enforced — a time at or before the
  /// object's latest observation rejects with kInvalidArgument rather
  /// than silently corrupting the history. On success the database-wide
  /// version advances and is recorded as the object's and its chain's
  /// epoch; the cluster registry is untouched (the object's chain — and
  /// therefore its cluster membership — never changes), so an append
  /// never re-runs the capped leader scan.
  util::Result<DataVersion> AppendObservation(ObjectId id, Observation obs);

  /// \brief AppendObservation with a caller-allocated version stamp,
  /// which must exceed data_version(). Used by ShardedDatabase so every
  /// shard's epochs advance along ONE global version sequence: the
  /// router allocates from its global counter and applies under the
  /// owning shard's ingest serialization, keeping each shard's
  /// data_version() monotonic in global order.
  util::Result<DataVersion> AppendObservationAtVersion(ObjectId id,
                                                       Observation obs,
                                                       DataVersion version);

  /// Database-wide epoch: 0 until the first AppendObservation, then the
  /// version of the latest applied mutation.
  DataVersion data_version() const { return version_; }

  /// Epoch of the latest mutation touching an object of `chain`
  /// (0 = never mutated). Cache entries derived from this chain carry
  /// the epoch they were built at and go stale when it advances.
  DataVersion chain_epoch(ChainId chain) const { return chain_epoch_[chain]; }

  /// Epoch of the latest mutation of cluster `cluster` (any member
  /// chain); tags the cluster-keyed envelope/bounds cache stores.
  DataVersion cluster_epoch(uint32_t cluster) const {
    return cluster_epoch_[cluster];
  }

  /// Epoch of object `id`'s latest appended observation (0 = frozen).
  DataVersion object_epoch(ObjectId id) const { return object_epoch_[id]; }

  /// \brief Lock-free mirror of object(id).needs_multi_observation_engine(),
  /// safe to read while another thread appends observations. The service's
  /// submit-path plan census runs without the ingest lock; reading the
  /// UncertainObject directly there would race the history push_back. Only
  /// ever transitions false -> true (appends can't remove observations).
  bool object_needs_multi_engine(ObjectId id) const {
    return (*multi_engine_)[id].load(std::memory_order_acquire);
  }

  uint32_t num_objects() const {
    return static_cast<uint32_t>(objects_.size());
  }
  uint32_t num_chains() const { return static_cast<uint32_t>(chains_.size()); }

  const UncertainObject& object(ObjectId id) const { return objects_[id]; }
  const std::vector<UncertainObject>& objects() const { return objects_; }
  const markov::MarkovChain& chain(ChainId id) const { return chains_[id]; }

  /// Object ids grouped by chain, in insertion order.
  const std::vector<std::vector<ObjectId>>& objects_by_chain() const {
    return by_chain_;
  }

  /// \brief Similarity clusters over the registered chains, maintained
  /// incrementally by AddChain. Never empty entries; every chain belongs
  /// to exactly one cluster.
  const std::vector<ChainCluster>& chain_clusters() const {
    return clusters_;
  }

  /// Index into chain_clusters() of the cluster holding `chain`.
  uint32_t cluster_of(ChainId chain) const { return cluster_of_[chain]; }

  /// \brief Mean per-row L1 distance between two equal-dimension transition
  /// matrices: sum over rows of Σ_j |a(r,j) − b(r,j)|, divided by the row
  /// count. 0 for identical chains, 2 for chains with disjoint supports.
  static double MeanRowL1Distance(const markov::MarkovChain& a,
                                  const markov::MarkovChain& b);

  /// \brief Clustering radius of AddChain: perturbed variants of one base
  /// model (jittered weights on a shared support) stay well below it,
  /// while independently drawn models land near the disjoint-support
  /// maximum of 2.
  static constexpr double kChainClusterL1Threshold = 0.6;

 private:
  /// Registers `id` in by_chain_ and the epoch / census side tables.
  void RegisterObject(ObjectId id, ChainId chain);

  std::vector<markov::MarkovChain> chains_;
  std::vector<UncertainObject> objects_;
  std::vector<std::vector<ObjectId>> by_chain_;
  std::vector<ChainCluster> clusters_;
  std::vector<uint32_t> cluster_of_;  // parallel to chains_
  DataVersion version_ = 0;
  std::vector<DataVersion> chain_epoch_;    // parallel to chains_
  std::vector<DataVersion> cluster_epoch_;  // parallel to clusters_
  std::vector<DataVersion> object_epoch_;   // parallel to objects_
  /// deque: push_back never relocates existing atomics, so the census
  /// mirror stays readable lock-free while objects are added. Held behind
  /// a unique_ptr so Database stays nothrow-movable (libstdc++'s deque
  /// move allocates) yet becomes move-only, which every existing use
  /// already satisfies.
  std::unique_ptr<std::deque<std::atomic<bool>>> multi_engine_ =
      std::make_unique<std::deque<std::atomic<bool>>>();  // ∥ objects_
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_DATABASE_H_
