// Copyright 2026 the ustdb authors.
//
// Database — the set D of uncertain spatio-temporal objects. Each object
// references a Markov chain (its motion model; Section V-C allows different
// chains per object class) and carries one or more observations.

#ifndef USTDB_CORE_DATABASE_H_
#define USTDB_CORE_DATABASE_H_

#include <optional>
#include <vector>

#include "core/multi_observation.h"
#include "markov/markov_chain.h"
#include "sparse/types.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// \brief One uncertain moving object: a motion model reference plus its
/// observation history (sorted by time; the first observation initializes
/// query processing).
struct UncertainObject {
  ObjectId id = 0;
  ChainId chain = 0;
  std::vector<Observation> observations;

  /// Convenience: the earliest observation's pdf (the P(o, 0) of Section V
  /// when there is a single observation at t=0).
  const sparse::ProbVector& initial_pdf() const {
    return observations.front().pdf;
  }

  /// True when the object has exactly one observation (Section V setting).
  bool single_observation() const { return observations.size() == 1; }

  /// \brief True when the object bypasses both single-observation plans
  /// and runs the Section VI multi-observation engine: several
  /// observations, or a single one not at t=0. The executor's census and
  /// the shard router's global plan census share this rule so their
  /// ChainLoads can never drift apart.
  bool needs_multi_observation_engine() const {
    return !single_observation() || observations.front().time != 0;
  }
};

/// \brief One cluster of similar motion models (Section V-C). Clusters are
/// built by greedy leader clustering on transition-matrix distance: the
/// first chain of a cluster is its leader, and every later chain joins the
/// first cluster whose leader it is close to (mean per-row L1 distance).
struct ChainCluster {
  ChainId leader = 0;            ///< first member; the cluster's exemplar
  std::vector<ChainId> members;  ///< ascending; includes the leader
};

/// \brief In-memory database of uncertain objects and their motion models.
///
/// Objects referencing the same ChainId form a class (buses / trucks / cars
/// in the paper's discussion); the query-based engine amortizes its backward
/// pass across each class. Similar classes are further grouped into
/// ChainClusters so the bounds-then-refine plan can bound many classes with
/// one interval envelope.
class Database {
 public:
  Database() = default;

  /// \brief Registers a motion model; returns its ChainId. Also assigns the
  /// chain to a cluster: it joins the first existing cluster whose leader
  /// has the same state count and a mean per-row L1 transition distance at
  /// most kChainClusterL1Threshold, else it starts a new cluster.
  ChainId AddChain(markov::MarkovChain chain);

  /// \brief Registers a motion model with a dictated cluster assignment:
  /// the chain joins the cluster of existing chain `join`, or founds a new
  /// cluster when `join` is nullopt. No similarity scan runs. Used by
  /// ShardedDatabase to mirror the global cluster registry into each
  /// shard's local Database exactly — the global greedy scan is capped
  /// (kMaxLeaderScan), so re-running it over a shard's subset of chains
  /// could place a chain differently than the unsharded registry did.
  ChainId AddChainToClusterOf(markov::MarkovChain chain,
                              std::optional<ChainId> join);

  /// \brief Adds an object. Observations must be sorted by strictly
  /// increasing time, non-empty, with pdfs matching the chain's state count;
  /// pdfs are normalized on insertion. Returns the new ObjectId.
  util::Result<ObjectId> AddObject(ChainId chain,
                                   std::vector<Observation> observations);

  /// Shorthand for the common single-observation-at-t0 case.
  util::Result<ObjectId> AddObjectAt(ChainId chain,
                                     sparse::ProbVector initial_pdf,
                                     Timestamp t = 0);

  /// \brief Re-inserts observations that already passed AddObject once,
  /// bit-exactly: no validation and — critically — no re-normalization,
  /// since Normalize() scales by 1/Sum() and is not floating-point
  /// idempotent. Used by ShardedDatabase's rebalance rebuild so a
  /// migrated object's pdfs keep the exact bits of the original
  /// insertion. The caller vouches the observations came out of a
  /// Database with a matching chain dimension.
  ObjectId ReAddNormalizedObject(ChainId chain,
                                 std::vector<Observation> observations);

  uint32_t num_objects() const {
    return static_cast<uint32_t>(objects_.size());
  }
  uint32_t num_chains() const { return static_cast<uint32_t>(chains_.size()); }

  const UncertainObject& object(ObjectId id) const { return objects_[id]; }
  const std::vector<UncertainObject>& objects() const { return objects_; }
  const markov::MarkovChain& chain(ChainId id) const { return chains_[id]; }

  /// Object ids grouped by chain, in insertion order.
  const std::vector<std::vector<ObjectId>>& objects_by_chain() const {
    return by_chain_;
  }

  /// \brief Similarity clusters over the registered chains, maintained
  /// incrementally by AddChain. Never empty entries; every chain belongs
  /// to exactly one cluster.
  const std::vector<ChainCluster>& chain_clusters() const {
    return clusters_;
  }

  /// Index into chain_clusters() of the cluster holding `chain`.
  uint32_t cluster_of(ChainId chain) const { return cluster_of_[chain]; }

  /// \brief Mean per-row L1 distance between two equal-dimension transition
  /// matrices: sum over rows of Σ_j |a(r,j) − b(r,j)|, divided by the row
  /// count. 0 for identical chains, 2 for chains with disjoint supports.
  static double MeanRowL1Distance(const markov::MarkovChain& a,
                                  const markov::MarkovChain& b);

  /// \brief Clustering radius of AddChain: perturbed variants of one base
  /// model (jittered weights on a shared support) stay well below it,
  /// while independently drawn models land near the disjoint-support
  /// maximum of 2.
  static constexpr double kChainClusterL1Threshold = 0.6;

 private:
  std::vector<markov::MarkovChain> chains_;
  std::vector<UncertainObject> objects_;
  std::vector<std::vector<ObjectId>> by_chain_;
  std::vector<ChainCluster> clusters_;
  std::vector<uint32_t> cluster_of_;  // parallel to chains_
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_DATABASE_H_
