// Copyright 2026 the ustdb authors.
//
// ObjectBasedEngine — Section V-A's forward query processing: per object,
// propagate its distribution through time, folding probability mass that
// enters the query window into the absorbing ◆ state, so each possible
// world is counted exactly once.

#ifndef USTDB_CORE_OBJECT_BASED_H_
#define USTDB_CORE_OBJECT_BASED_H_

#include <optional>

#include "core/absorbing.h"
#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"

namespace ustdb {
namespace core {

/// How the absorbing-state semantics are realized.
enum class MatrixMode {
  /// Transition with the chain's own M and fold window mass into the hit
  /// accumulator by hand. No augmented matrix is materialized. Default.
  kImplicit,
  /// Materialize the paper's M−/M+ and run plain vec×mat products against
  /// them (the MATLAB flavour). Kept for fidelity and as an ablation.
  kExplicit,
};

/// Tuning knobs for the object-based engine.
struct ObjectBasedOptions {
  MatrixMode mode = MatrixMode::kImplicit;

  /// Stop transitions once the un-absorbed residual mass drops below this
  /// value; the final probability is then exact up to `epsilon`. The paper:
  /// "computation can be stopped as soon as the probability of state ◆
  /// becomes sufficiently large". 0 disables.
  double epsilon = 0.0;
};

/// Outcome of a three-valued threshold decision (see ExistsDecision).
enum class ThresholdDecision {
  kYes,       ///< P∃ ≥ τ for certain (true hit)
  kNo,        ///< P∃ < τ for certain (true drop)
};

/// Diagnostics of one engine run.
struct ObRunStats {
  uint32_t transitions = 0;      ///< vec×mat products executed
  uint32_t max_support = 0;      ///< peak support of the distribution vector
  bool early_terminated = false; ///< stopped before t_end
};

/// \brief Evaluates PST∃Q for one chain and one window, object by object.
///
/// The window and chain are fixed at construction; ExistsProbability() is
/// then called once per object. Cost per object: O(|S_reach|² · δt) in the
/// paper's notation.
class ObjectBasedEngine {
 public:
  /// \pre window.region().domain_size() == chain->num_states(); `chain`
  /// must outlive the engine.
  ObjectBasedEngine(const markov::MarkovChain* chain, QueryWindow window,
                    ObjectBasedOptions options = {});

  /// \brief P∃(o, S□, T□): probability that the object intersects the
  /// window, for an object whose (single) observation at t=0 is `initial`.
  /// \param stats optional diagnostics sink.
  double ExistsProbability(const sparse::ProbVector& initial,
                           ObRunStats* stats = nullptr) const;

  /// \brief Decides P∃ ≥ τ with early termination: transitions stop as soon
  /// as the accumulated hit mass reaches τ (true hit) or hit + residual
  /// falls below τ (true drop). Exact, usually far fewer transitions than
  /// ExistsProbability.
  ThresholdDecision ExistsDecision(const sparse::ProbVector& initial,
                                   double tau,
                                   ObRunStats* stats = nullptr) const;

  const QueryWindow& window() const { return window_; }
  const markov::MarkovChain& chain() const { return *chain_; }

  /// Explicit M−/M+ (built lazily on first kExplicit run; exposed for
  /// tests and the ablation bench).
  const AugmentedMatrices& augmented() const;

 private:
  double RunImplicit(const sparse::ProbVector& initial, double stop_hit,
                     double stop_residual, ObRunStats* stats) const;
  double RunExplicit(const sparse::ProbVector& initial,
                     ObRunStats* stats) const;

  const markov::MarkovChain* chain_;
  QueryWindow window_;
  ObjectBasedOptions options_;
  mutable std::optional<AugmentedMatrices> augmented_;  // lazy (kExplicit)
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_OBJECT_BASED_H_
