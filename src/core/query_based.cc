#include "core/query_based.h"

#include <cassert>

namespace ustdb {
namespace core {

QueryBasedEngine::QueryBasedEngine(const markov::MarkovChain* chain,
                                   QueryWindow window,
                                   QueryBasedOptions options)
    : chain_(chain), window_(std::move(window)), options_(options) {
  assert(chain_ != nullptr);
  assert(window_.region().domain_size() == chain_->num_states());
  if (options_.mode == MatrixMode::kExplicit) {
    RunBackwardExplicit();
  } else {
    RunBackwardImplicit();
  }
}

QueryBasedEngine::QueryBasedEngine(const QueryBasedEngine& base,
                                   QueryWindow window, Timestamp delta)
    : chain_(base.chain_),
      window_(std::move(window)),
      options_(base.options_) {
  assert(options_.mode == MatrixMode::kImplicit);
  assert(delta >= 1);
  assert(window_.t_end() == base.window_.t_end() + delta);
  const sparse::CsrMatrix& mt = chain_->transposed();
  const sparse::CsrMatrix& mtt = chain_->matrix();
  sparse::ProbVector g = base.start_vector_;
  sparse::VecMatWorkspace ws;
  for (Timestamp t = delta; t > 0; --t) {
    ws.Multiply(g, mt, &g, &mtt);
  }
  // The shifted window starts at or after t = delta >= 1, so 0 ∈ T□ is
  // impossible and no final clamp applies.
  transitions_ = base.transitions_ + delta;
  start_vector_ = std::move(g);
}

void QueryBasedEngine::RunBackwardImplicit() {
  const uint32_t n = chain_->num_states();
  const sparse::CsrMatrix& mt = chain_->transposed();
  // The gather kernel wants the transpose of the multiplied matrix — the
  // transpose of Mᵀ is M itself, already materialized.
  const sparse::CsrMatrix& mtt = chain_->matrix();

  // g(t)[s] = P(object at s at time t, not yet redirected, satisfies the
  // query at some time >= t). Backward from t_end: g(t_end) = 0 everywhere
  // — a world that has not been absorbed by the last window time never will
  // be. Before each backward step from t to t-1, states in the region are
  // clamped to 1 when t ∈ T□ (forward M+ would have redirected them); the
  // clamp is fused into the product (MultiplyClamped) so a window step
  // costs one pass instead of extract + re-insert + product.
  sparse::ProbVector g = sparse::ProbVector::Zero(n);
  sparse::VecMatWorkspace ws;

  const Timestamp t_end = window_.t_end();
  for (Timestamp t = t_end; t > 0; --t) {
    if (window_.ContainsTime(t)) {
      ws.MultiplyClamped(g, mt, window_.region(), &g, &mtt);
    } else {
      ws.Multiply(g, mt, &g, &mtt);
    }
    ++transitions_;
  }
  if (window_.ContainsTime(0)) {
    ClampRegionToOnes(window_.region(), &g);
  }
  start_vector_ = std::move(g);
}

void QueryBasedEngine::RunBackwardExplicit() {
  const uint32_t n = chain_->num_states();
  // (M±)ᵀ assembled from the chain's memoized Mᵀ — no per-build
  // re-materialization and re-transposition of the augmented matrices.
  AugmentedMatrices augt = BuildAbsorbingTransposed(*chain_, window_.region());

  sparse::ProbVector p = sparse::ProbVector::Delta(n + 1, n);  // (0,...,0,1)
  sparse::VecMatWorkspace ws;
  const Timestamp t_end = window_.t_end();
  for (Timestamp t = t_end; t > 0; --t) {
    const sparse::CsrMatrix& m = window_.ContainsTime(t) ? augt.plus
                                                         : augt.minus;
    ws.Multiply(p, m, &p);
    ++transitions_;
  }
  // p now holds, per augmented start state, the satisfaction probability.
  // Project to the n real states, folding the 0 ∈ T□ case: starting inside
  // the region at time 0 satisfies the query with probability 1.
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t s = 0; s < n; ++s) {
    double val = (window_.ContainsTime(0) && window_.region().Contains(s))
                     ? 1.0
                     : p.Get(s);
    if (val != 0.0) pairs.emplace_back(s, val);
  }
  start_vector_ =
      sparse::ProbVector::FromPairs(n, std::move(pairs)).ValueOrDie();
}

}  // namespace core
}  // namespace ustdb
