#include "core/query_based.h"

#include <cassert>

namespace ustdb {
namespace core {

QueryBasedEngine::QueryBasedEngine(const markov::MarkovChain* chain,
                                   QueryWindow window,
                                   QueryBasedOptions options)
    : chain_(chain), window_(std::move(window)), options_(options) {
  assert(chain_ != nullptr);
  assert(window_.region().domain_size() == chain_->num_states());
  if (options_.mode == MatrixMode::kExplicit) {
    RunBackwardExplicit();
  } else {
    RunBackwardImplicit();
  }
}

void QueryBasedEngine::RunBackwardImplicit() {
  const uint32_t n = chain_->num_states();
  const sparse::CsrMatrix& mt = chain_->transposed();

  // g(t)[s] = P(object at s at time t, not yet redirected, satisfies the
  // query at some time >= t). Backward from t_end: g(t_end) = 0 everywhere
  // — a world that has not been absorbed by the last window time never will
  // be. Before each backward step from t to t-1, states in the region are
  // clamped to 1 when t ∈ T□ (forward M+ would have redirected them).
  sparse::ProbVector g = sparse::ProbVector::Zero(n);
  sparse::VecMatWorkspace ws;

  std::vector<std::pair<uint32_t, double>> region_ones;
  region_ones.reserve(window_.region().size());

  const Timestamp t_end = window_.t_end();
  for (Timestamp t = t_end; t > 0; --t) {
    if (window_.ContainsTime(t)) {
      // Clamp region entries to exactly 1 (replace, not add).
      g.ExtractMassIn(window_.region());
      region_ones.clear();
      for (uint32_t s : window_.region()) region_ones.emplace_back(s, 1.0);
      g.AddEntries(region_ones);
    }
    ws.Multiply(g, mt, &g);
    ++transitions_;
  }
  if (window_.ContainsTime(0)) {
    g.ExtractMassIn(window_.region());
    region_ones.clear();
    for (uint32_t s : window_.region()) region_ones.emplace_back(s, 1.0);
    g.AddEntries(region_ones);
  }
  start_vector_ = std::move(g);
}

void QueryBasedEngine::RunBackwardExplicit() {
  const uint32_t n = chain_->num_states();
  // Build M± and transpose them; the backward pass is then plain vec×mat.
  AugmentedMatrices aug = BuildAbsorbingMatrices(*chain_, window_.region());
  const sparse::CsrMatrix minus_t = aug.minus.Transposed();
  const sparse::CsrMatrix plus_t = aug.plus.Transposed();

  sparse::ProbVector p = sparse::ProbVector::Delta(n + 1, n);  // (0,...,0,1)
  sparse::VecMatWorkspace ws;
  const Timestamp t_end = window_.t_end();
  for (Timestamp t = t_end; t > 0; --t) {
    const sparse::CsrMatrix& m = window_.ContainsTime(t) ? plus_t : minus_t;
    ws.Multiply(p, m, &p);
    ++transitions_;
  }
  // p now holds, per augmented start state, the satisfaction probability.
  // Project to the n real states, folding the 0 ∈ T□ case: starting inside
  // the region at time 0 satisfies the query with probability 1.
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t s = 0; s < n; ++s) {
    double val = (window_.ContainsTime(0) && window_.region().Contains(s))
                     ? 1.0
                     : p.Get(s);
    if (val != 0.0) pairs.emplace_back(s, val);
  }
  start_vector_ =
      sparse::ProbVector::FromPairs(n, std::move(pairs)).ValueOrDie();
}

}  // namespace core
}  // namespace ustdb
