// Copyright 2026 the ustdb authors.
//
// QueryExecutor — the single execution pipeline behind every query entry
// point. One Run(QueryRequest) call evaluates any predicate (∃ / ∀ /
// k-times / threshold-τ / top-k) with:
//
//   * cost-based plan selection per chain class (QueryPlanner),
//   * object-level parallelism on a persistent thread pool,
//   * an LRU cache of query-based backward passes (EngineCache) that turns
//     repeated monitoring windows into pure dot products,
//   * τ-early-termination on object-based threshold runs,
//   * Section V-C cluster pruning as a first-class plan: threshold
//     requests may bound whole chain clusters with cached interval
//     envelopes and refine only the undecided objects (kBoundsThenRefine,
//     chosen cost-based or forced),
//   * automatic routing of multi-observation objects through the
//     Section VI engine.
//
// RunBatch() accepts a whole dashboard refresh at once: requests are
// grouped by (effective window, matrix mode), each group shares one
// backward pass (and one engine of every other kind it needs) across all
// of its members, and groups execute in parallel on the pool. The
// amortization the paper's query-based plan promises across *objects*
// thus extends across *requests*.
//
// The legacy facades — QueryProcessor, ParallelExists, ThresholdExists* —
// are thin wrappers over this class.

#ifndef USTDB_CORE_EXECUTOR_H_
#define USTDB_CORE_EXECUTOR_H_

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/database.h"
#include "core/engine_cache.h"
#include "core/planner.h"
#include "core/query_request.h"
#include "obs/metrics.h"
#include "util/parallel_for.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// Configuration of one executor instance.
struct ExecutorOptions {
  /// Worker threads for per-object evaluation; 0 = one per hardware
  /// context, 1 = fully sequential (no threads spawned — bit-identical to
  /// the sequential facades by construction, since per-object arithmetic
  /// is independent either way).
  unsigned num_threads = 0;
  /// Capacity of the query-based engine cache. Sized for the number of
  /// distinct (chain, window) pairs a monitoring deployment keeps hot.
  size_t cache_capacity = 32;
  /// Observability wiring: with obs.enabled the executor feeds per-stage
  /// timing histograms, plan/cache/prune counters (labeled with
  /// obs.labels, e.g. the owning service's shard) into obs.registry, and
  /// records executor-side spans on any request carrying a QueryTrace.
  /// ExecStats/PruneStats semantics are unchanged either way — the same
  /// increment sites feed both. Disabled: no registry handle is resolved
  /// and no extra clock is read.
  obs::ObsOptions obs;
};

/// \brief Plans and executes QueryRequests over one Database.
///
/// Owns the thread pool and the engine cache; create one executor per
/// serving thread and reuse it across queries so cached backward passes
/// amortize. Not internally synchronized: Run() and RunBatch() must not
/// be called concurrently on the same instance, and the Database must not
/// be mutated while a run is in flight (the service layer serializes
/// ingest against dispatch with a per-shard lock). The Database must
/// outlive the executor. Between runs, Database::AppendObservation is
/// safe without ClearCache(): every cache entry is tagged with the epoch
/// of the data it derives from, and a lookup at a newer epoch lazily
/// drops exactly the stale entry (EngineCacheStats::invalidations) —
/// untouched chains keep their passes. ClearCache() remains for chain
/// replacement, which reuses chain storage addresses.
class QueryExecutor {
 public:
  /// \param db the database to serve; must outlive the executor.
  /// \param options thread-pool size and engine-cache capacity.
  explicit QueryExecutor(const Database* db, ExecutorOptions options = {});

  ~QueryExecutor();

  /// \brief Evaluates `request`; see QueryResult for per-predicate output
  /// conventions. Fails with kInvalidArgument on out-of-range filter ids
  /// and with kUnimplemented for PSTkQ over multi-observation objects
  /// (outside the paper's framework).
  ///
  /// Cooperative stops: the parallel loop polls request.cancel and checks
  /// request.deadline between kStopCheckStride-object sub-chunks; a
  /// tripped token resolves the run with Status::Cancelled, a passed
  /// deadline with Status::DeadlineExceeded, in both cases leaving the
  /// remaining objects unevaluated (last_run_stats() shows the partial
  /// progress).
  ///
  /// Complexity per chain class: one pass is O(t_end × nnz); the
  /// object-based plan pays one pass per object, the query-based plan one
  /// pass per chain plus one sparse dot product per object (zero passes
  /// when the engine cache holds the window). Objects run in parallel on
  /// the executor's pool; results are bit-identical across thread counts.
  ///
  /// Fault boundary: a FaultInjectedError or std::bad_alloc escaping the
  /// run's controlling thread (engine build, cache admission) is caught
  /// here and resolves the run with kUnavailable — transient and
  /// retryable, never a crash. Requests with degrade == kBoundsOnly
  /// answer from the Section V-C interval bounds alone (see DegradeMode).
  util::Result<QueryResult> Run(const QueryRequest& request);

  /// \brief Evaluates a batch of requests, amortizing shared work, and
  /// returns one result per request in request order.
  ///
  /// Requests are grouped by (effective window, matrix mode) — the
  /// effective window is the complemented region for PST∀Q members, so a
  /// ∀-request never shares a backward pass with an ∃-request on the same
  /// region. Each group builds at most one engine per (chain, kind):
  /// one query-based backward pass serves every member that evaluates the
  /// chain query-based, one object-based engine every forward member, one
  /// k-times engine every PSTkQ member. Plan choice is made once per
  /// (group, chain) by QueryPlanner::PlanBatch, whose cost model amortizes
  /// the backward pass over the whole group; requests that pin `plan` keep
  /// their pinned plan.
  ///
  /// Parallelism is two-phase. First every missing engine — above all the
  /// expensive query-based backward passes — is built, one pool task per
  /// (group, chain) build. Then the per-object evaluation of *all* members
  /// of *all* groups is flattened into object-range subtasks of
  /// util::kStopCheckStride objects each and spread across the pool, so a
  /// batch concentrated on a single window (one group) still saturates
  /// every worker instead of one. Members are evaluated in waves whose
  /// combined object count is bounded, so per-member scratch peaks at the
  /// wave budget rather than O(batch × objects). Each subtask re-checks
  /// its member's cancellation token and deadline before running,
  /// preserving the solo path's cooperative-stop stride;
  /// ExecStats::group_subtasks reports the splits taken per member. Cached backward passes are borrowed before
  /// the parallel phases and newly built ones are inserted after, so
  /// repeated refreshes of the same dashboard hit a warm cache exactly
  /// like repeated Run() calls.
  ///
  /// Each member's result is the same as a solo Run() of that request —
  /// bit-identical whenever the solo run would pick the same plan (always
  /// true for pinned plans; for kAuto the batch cost model may upgrade an
  /// object-based chain to the shared query-based pass, which changes the
  /// result only within floating-point rounding of the same exact value).
  /// Failures are per member: one invalid request does not poison the
  /// batch. An empty span yields an empty vector.
  std::vector<util::Result<QueryResult>> RunBatch(
      std::span<const QueryRequest> requests);

  /// \brief Cumulative engine-cache statistics across all runs.
  ///
  /// Thread contract (audited for the concurrent-snapshot hardening):
  /// NOT synchronized against a concurrent Run()/RunBatch() — the cache
  /// mutates its counters mid-run, so call this only from the thread that
  /// issues runs (the QueryService reads it exactly there, on each
  /// shard's dispatcher thread, and republishes a consistent copy through
  /// ServiceStats::cache under its own lock). Concurrent observers should
  /// read QueryService::stats() or the obs::MetricsRegistry instead.
  const EngineCacheStats& cache_stats() const { return cache_.stats(); }

  /// \brief Telemetry of the most recent Run(), including runs that failed
  /// or were stopped mid-flight — whose Result carries no QueryResult to
  /// hold stats. A cancelled run's objects_evaluated counts only the
  /// objects answered before the stop, so a caller can prove the loop quit
  /// early by comparing against an uncancelled twin. Solo Run() only;
  /// RunBatch members report through their own QueryResult::stats.
  ///
  /// Thread contract: `last_stats_` is plain data written by Run() with no
  /// synchronization — valid only from the Run-calling thread, after Run
  /// returns. Reading it while another thread is inside Run() is a data
  /// race; concurrent observers get the same information race-free from
  /// the obs::MetricsRegistry the executor feeds.
  const ExecStats& last_run_stats() const { return last_stats_; }

  /// Drops every cached engine. Not needed after AppendObservation
  /// (epoch tags invalidate lazily, per chain); required only when chain
  /// storage itself is replaced.
  void ClearCache() { cache_.Clear(); }

  /// The planner whose cost model drives OB/QB selection.
  const QueryPlanner& planner() const { return planner_; }
  /// The database this executor serves.
  const Database& db() const { return *db_; }

  /// Worker threads available to this executor (>= 1).
  unsigned num_threads() const { return threads_; }

 private:
  struct ChainPlan;   // per-run or per-group, per-chain engine bundle
  struct BatchGroup;  // requests sharing (effective window, matrix mode)
  class Selection;    // non-allocating view of the ids a request evaluates
  struct ExistsEval;  // shared stop/error/counter state of one evaluation
  struct KTimesEval;  // ditto for the k-times evaluation loop
  struct ObsHandles;  // resolved metric handles (null when obs disabled)

  /// True when this run should read stage clocks: metrics are on, or the
  /// request carries a trace. The "off" side of the overhead contract
  /// reads no clock at all.
  bool TimingOn(const QueryRequest& request) const {
    return obs_ != nullptr || request.trace != nullptr;
  }

  /// One feed site per run for the counter families sourced from
  /// ExecStats (chains, objects, prune) — the stats themselves keep their
  /// exact semantics; this mirrors them into the registry.
  void FeedRunStats(const ExecStats& stats);
  /// One feed site per run for cache events: the delta of cache_.stats()
  /// against the run-entry snapshot `before`.
  void FeedCacheDelta(const EngineCacheStats& before);
  /// Observes one stage duration (seconds) when metrics are on.
  void FeedStage(obs::Histogram* h, double seconds);

  /// Progress counters of one evaluation loop, valid even when the loop
  /// was stopped early by an error, a cancellation, or a deadline.
  struct EvalCounters {
    uint32_t early_stops = 0;  ///< OB runs cut short by a τ-decision
    uint32_t singles = 0;      ///< single-observation objects answered
    uint32_t multis = 0;       ///< multi-observation objects answered
  };

  util::Status ValidateFilter(const QueryRequest& request) const;

  /// Run/RunBatch bodies; the public wrappers add the fault boundary.
  util::Result<QueryResult> RunImpl(const QueryRequest& request);
  std::vector<util::Result<QueryResult>> RunBatchImpl(
      std::span<const QueryRequest> requests);

  util::Result<QueryResult> RunExistsFamily(const QueryRequest& request,
                                            const Selection& ids);

  /// \brief Bounds-only degraded answer (degrade == kBoundsOnly): decides
  /// kThresholdExists objects from the cluster interval bounds alone —
  /// certainly-in objects (lower bound clears τ) are returned with their
  /// lower bound, certainly-out objects dropped, the borderline reported
  /// in QueryResult::undecided. Objects (or whole requests) the bound
  /// pass cannot reach are undecided over [0, 1]. Never refines, so the
  /// cost is one cached envelope sweep per cluster.
  util::Result<QueryResult> RunDegradedBounds(const QueryRequest& request,
                                              const Selection& ids);
  util::Result<QueryResult> RunKTimes(const QueryRequest& request,
                                      const Selection& ids);

  /// \brief Solo kThresholdExists via the Section V-C plan: bound every
  /// chain cluster holding evaluated objects, drop objects whose upper
  /// bound clears τ from below, then refine the remainder query-based.
  /// \pre the window's time set is a contiguous range.
  util::Result<QueryResult> RunBoundsThenRefine(const QueryRequest& request,
                                                const Selection& ids,
                                                const QueryWindow& window);

  /// \brief Splits a selection for the bound pass: single-observation
  /// objects (observed at t=0) are bucketed by registry cluster, every
  /// other object — outside the t=0 bound pass's reach — goes straight to
  /// `refine`. Shared by Run and RunBatch so the partition rule cannot
  /// drift between the two.
  void PartitionByCluster(
      const Selection& ids,
      std::map<uint32_t, std::vector<ObjectId>>* cluster_objects,
      std::vector<ObjectId>* refine) const;

  /// \brief The bound → decide step shared by Run and RunBatch: for every
  /// (cluster index → evaluated object ids) entry, obtains the cluster's
  /// interval envelope and per-window bound pass (memoized in the
  /// EngineCache), drops objects whose exists upper bound is below
  /// request.tau, and appends the rest to `refine`. Polls the request's
  /// cancellation token and deadline between clusters and returns the stop
  /// status (with `prune` reflecting the clusters bounded so far).
  util::Status BoundClusters(
      const QueryRequest& request, const QueryWindow& window,
      const std::map<uint32_t, std::vector<ObjectId>>& cluster_objects,
      std::vector<ObjectId>* refine, PruneStats* prune);

  /// \brief Builds the engines realizing each ChainPlan's decided plan for
  /// a solo evaluation: query-based passes come from the cache while
  /// capacity lasts (implicit mode only — borrowed pointers must never
  /// evict each other), overflow and explicit-mode chains get owned
  /// engines. Accumulates the cache deltas into `stats`.
  void BuildExistsEngines(const QueryRequest& request,
                          const QueryWindow& window,
                          std::map<ChainId, ChainPlan>* plans,
                          ExecStats* stats);

  // Shared per-object evaluation cores: the range methods evaluate
  // objects [begin, end) of `ids` (thread-safe across disjoint ranges,
  // results written independently per object) and are driven either by
  // the solo Run's ParallelChunksUntil loop (the *Objects wrappers) or by
  // RunBatch's flat subtask scheduler.
  void EvaluateExistsRange(const QueryRequest& request,
                           const QueryWindow& window, const Selection& ids,
                           const std::map<ChainId, ChainPlan>& plans,
                           size_t begin, size_t end,
                           std::vector<double>* probs,
                           std::vector<uint8_t>* keep, ExistsEval* ev);
  void EvaluateKTimesRange(const Selection& ids,
                           const std::map<ChainId, ChainPlan>& plans,
                           size_t begin, size_t end,
                           std::vector<ObjectKTimes>* distributions,
                           KTimesEval* ev);
  util::Status EvaluateExistsObjects(const QueryRequest& request,
                                     const QueryWindow& window,
                                     const Selection& ids,
                                     const std::map<ChainId, ChainPlan>& plans,
                                     std::vector<double>* probs,
                                     std::vector<uint8_t>* keep,
                                     EvalCounters* counters,
                                     bool refine_query_based = false);
  util::Status EvaluateKTimesObjects(const QueryRequest& request,
                                     const Selection& ids,
                                     const std::map<ChainId, ChainPlan>& plans,
                                     std::vector<ObjectKTimes>* distributions,
                                     uint32_t* evaluated);
  static void AssembleExistsResult(const QueryRequest& request,
                                   const Selection& ids,
                                   const std::vector<double>& probs,
                                   const std::vector<uint8_t>& keep,
                                   QueryResult* result);

  const Database* db_;
  ExecutorOptions options_;
  unsigned threads_;
  QueryPlanner planner_;
  EngineCache cache_;
  util::ThreadPool pool_;
  ExecStats last_stats_;
  std::unique_ptr<ObsHandles> obs_;  // null when options_.obs.enabled=false
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_EXECUTOR_H_
