// Copyright 2026 the ustdb authors.
//
// QueryExecutor — the single execution pipeline behind every query entry
// point. One Run(QueryRequest) call evaluates any predicate (∃ / ∀ /
// k-times / threshold-τ / top-k) with:
//
//   * cost-based plan selection per chain class (QueryPlanner),
//   * object-level parallelism on a persistent thread pool,
//   * an LRU cache of query-based backward passes (EngineCache) that turns
//     repeated monitoring windows into pure dot products,
//   * τ-early-termination on object-based threshold runs,
//   * automatic routing of multi-observation objects through the
//     Section VI engine.
//
// The legacy facades — QueryProcessor, ParallelExists, ThresholdExists* —
// are thin wrappers over this class.

#ifndef USTDB_CORE_EXECUTOR_H_
#define USTDB_CORE_EXECUTOR_H_

#include <vector>

#include "core/database.h"
#include "core/engine_cache.h"
#include "core/planner.h"
#include "core/query_request.h"
#include "util/parallel_for.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// Configuration of one executor instance.
struct ExecutorOptions {
  /// Worker threads for per-object evaluation; 0 = one per hardware
  /// context, 1 = fully sequential (no threads spawned — bit-identical to
  /// the sequential facades by construction, since per-object arithmetic
  /// is independent either way).
  unsigned num_threads = 0;
  /// Capacity of the query-based engine cache. Sized for the number of
  /// distinct (chain, window) pairs a monitoring deployment keeps hot.
  size_t cache_capacity = 32;
};

/// \brief Plans and executes QueryRequests over one Database.
///
/// Owns the thread pool and the engine cache; create one executor per
/// serving thread and reuse it across queries so cached backward passes
/// amortize. Not internally synchronized: Run() must not be called
/// concurrently on the same instance. The Database must outlive the
/// executor and must not grow chains while cached engines exist (call
/// ClearCache() after mutating the database).
class QueryExecutor {
 public:
  explicit QueryExecutor(const Database* db, ExecutorOptions options = {});

  /// \brief Evaluates `request`; see QueryResult for per-predicate output
  /// conventions. Fails with kInvalidArgument on out-of-range filter ids
  /// and with kUnimplemented for PSTkQ over multi-observation objects
  /// (outside the paper's framework).
  util::Result<QueryResult> Run(const QueryRequest& request);

  /// Cumulative engine-cache statistics across all runs.
  const EngineCacheStats& cache_stats() const { return cache_.stats(); }

  /// Drops cached engines (required after the database is mutated).
  void ClearCache() { cache_.Clear(); }

  const QueryPlanner& planner() const { return planner_; }
  const Database& db() const { return *db_; }

  /// Worker threads available to this executor (>= 1).
  unsigned num_threads() const { return threads_; }

 private:
  struct ChainPlan;  // per-run, per-chain engine bundle
  class Selection;   // non-allocating view of the ids a request evaluates

  util::Result<QueryResult> RunExistsFamily(const QueryRequest& request,
                                            const Selection& ids);
  util::Result<QueryResult> RunKTimes(const QueryRequest& request,
                                      const Selection& ids);

  const Database* db_;
  ExecutorOptions options_;
  unsigned threads_;
  QueryPlanner planner_;
  EngineCache cache_;
  util::ThreadPool pool_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_EXECUTOR_H_
