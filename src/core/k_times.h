// Copyright 2026 the ustdb authors.
//
// PSTkQ — Section VII's k-times query: the distribution over the number of
// window timestamps at which the object is inside the query region.
//
// Two implementations:
//  * kImplicit — the paper's memory-efficient algorithm: a (|T□|+1) × |S|
//    matrix C(t) where c_{k,s} = P(currently at s, visited the window at
//    exactly k times so far); each transition multiplies every row by M,
//    and at window timestamps the region columns shift down one row.
//  * kExplicit — the block-matrix construction over S × {0..|T□|}
//    (BuildKTimesMatrices), memory cost |T□|+1 times M.
// Both are tested for equality; bench_ablation_matrices compares them.

#ifndef USTDB_CORE_K_TIMES_H_
#define USTDB_CORE_K_TIMES_H_

#include <vector>

#include "core/absorbing.h"
#include "core/object_based.h"
#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"

namespace ustdb {
namespace core {

/// Tuning knobs for the k-times engine.
struct KTimesOptions {
  MatrixMode mode = MatrixMode::kImplicit;
};

/// \brief The PSTkQ count-shift, shared by KTimesEngine (homogeneous
/// chains) and TimeVaryingKTimes: region entries of level k move to level
/// k+1, with level K keeping its mass — a world can visit at most
/// K = num_times window timestamps, and level K only receives mass at the
/// last one, so that branch only triggers for the final shift, where it
/// is a no-op for correctness (keeps the distribution summing to one).
/// All levels are extracted before any is re-inserted so the update is
/// order-independent; inside the engines' transition loops the extraction
/// is fused into each level's product (MultiplyAndExtractEntries writes
/// into slot(k)) and only Reinsert() remains.
class KTimesShift {
 public:
  explicit KTimesShift(uint32_t levels) : extracted_(levels) {}

  /// Extraction buffer of level k (cleared and refilled by the caller's
  /// fused product at window times).
  std::vector<std::pair<uint32_t, double>>* slot(uint32_t k) {
    return &extracted_[k];
  }

  /// Re-inserts every level's extracted entries one level up.
  void Reinsert(std::vector<sparse::ProbVector>* rows) {
    const size_t levels = extracted_.size();
    for (size_t k = 0; k + 1 < levels; ++k) {
      (*rows)[k + 1].AddEntries(extracted_[k]);
    }
    (*rows)[levels - 1].AddEntries(extracted_[levels - 1]);
  }

  /// The standalone shift (extract every level, then re-insert) — used at
  /// t=0 where no product precedes the shift.
  void ShiftAll(const sparse::IndexSet& region,
                std::vector<sparse::ProbVector>* rows) {
    for (size_t k = 0; k < extracted_.size(); ++k) {
      extracted_[k] = (*rows)[k].ExtractEntriesIn(region);
    }
    Reinsert(rows);
  }

 private:
  std::vector<std::vector<std::pair<uint32_t, double>>> extracted_;
};

/// \brief Evaluates PSTkQ for one chain and one window.
class KTimesEngine {
 public:
  /// \pre window.region().domain_size() == chain->num_states(); `chain`
  /// must outlive the engine.
  KTimesEngine(const markov::MarkovChain* chain, QueryWindow window,
               KTimesOptions options = {});

  /// \brief Full distribution: element k (0 <= k <= |T□|) is the
  /// probability that the object is inside S□ at exactly k timestamps of
  /// T□. Sums to one.
  std::vector<double> Distribution(const sparse::ProbVector& initial) const;

  /// P(exactly k visits); k must be <= |T□|.
  double Probability(const sparse::ProbVector& initial, uint32_t k) const;

  const QueryWindow& window() const { return window_; }

 private:
  std::vector<double> RunImplicit(const sparse::ProbVector& initial) const;
  std::vector<double> RunExplicit(const sparse::ProbVector& initial) const;

  const markov::MarkovChain* chain_;
  QueryWindow window_;
  KTimesOptions options_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_K_TIMES_H_
