#include "core/executor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "core/k_times.h"
#include "core/multi_observation.h"

namespace ustdb {
namespace core {

namespace {

/// Multi-observation objects (or single observations not at t=0) bypass
/// both single-observation plans and run the Section VI engine.
bool NeedsMultiObservation(const UncertainObject& obj) {
  return !obj.single_observation() || obj.observations.front().time != 0;
}

}  // namespace

/// Per-run, per-chain bundle: the decided plan plus the engine realizing
/// it. QB engines are borrowed from the cache when possible, owned when
/// the cache cannot hold the run's working set or a non-default matrix
/// mode is requested (cache entries are keyed without the mode).
struct QueryExecutor::ChainPlan {
  Plan plan = Plan::kQueryBased;
  const QueryBasedEngine* qb = nullptr;
  std::unique_ptr<QueryBasedEngine> qb_owned;
  std::unique_ptr<ObjectBasedEngine> ob;
};

/// Either the caller's filter (borrowed — the request outlives the run) or
/// the implicit identity range [0, num_objects); never materializes ids.
class QueryExecutor::Selection {
 public:
  Selection(const QueryRequest& request, uint32_t num_objects)
      : filter_(request.object_filter.has_value() ? &*request.object_filter
                                                  : nullptr),
        size_(filter_ != nullptr ? filter_->size() : num_objects) {}

  size_t size() const { return size_; }
  ObjectId operator[](size_t i) const {
    return filter_ != nullptr ? (*filter_)[i] : static_cast<ObjectId>(i);
  }

 private:
  const std::vector<ObjectId>* filter_;
  size_t size_;
};

QueryExecutor::QueryExecutor(const Database* db, ExecutorOptions options)
    : db_(db),
      options_(options),
      threads_(util::ResolveThreadCount(options.num_threads)),
      planner_(db),
      cache_(options.cache_capacity),
      pool_(options.num_threads) {}

util::Result<QueryResult> QueryExecutor::Run(const QueryRequest& request) {
  if (request.object_filter.has_value()) {
    for (ObjectId id : *request.object_filter) {
      if (id >= db_->num_objects()) {
        return util::Status::InvalidArgument(
            "object_filter references an id outside the database");
      }
    }
  }
  const Selection ids(request, db_->num_objects());
  if (request.predicate == PredicateKind::kKTimes) {
    return RunKTimes(request, ids);
  }
  return RunExistsFamily(request, ids);
}

util::Result<QueryResult> QueryExecutor::RunExistsFamily(
    const QueryRequest& request, const Selection& ids) {
  QueryResult result;
  result.stats.threads_used = threads_;

  const bool forall = request.predicate == PredicateKind::kForAll;
  // PST∀Q runs as PST∃Q on the complemented region (Section VII).
  const QueryWindow window =
      forall ? request.window.WithComplementRegion() : request.window;

  // --- Plan phase: decide per chain class, then build engines. -----------
  std::map<ChainId, uint32_t> single_obs_per_chain;
  for (size_t i = 0; i < ids.size(); ++i) {
    const UncertainObject& obj = db_->object(ids[i]);
    if (NeedsMultiObservation(obj)) {
      ++result.stats.objects_multi_observation;
    } else {
      ++single_obs_per_chain[obj.chain];
      ++result.stats.objects_evaluated;
    }
  }

  std::map<ChainId, ChainPlan> plans;
  for (const auto& [chain, count] : single_obs_per_chain) {
    plans[chain].plan = planner_.Choose(chain, request, count).plan;
  }

  // The cache serves QB chains only for the default matrix mode (cached
  // engines are built with it), and only as many chains as fit at once —
  // Get() pointers are invalidated by eviction, so entries borrowed by
  // this run must never evict each other. Overflow chains degrade to
  // owned, uncached engines instead of losing caching wholesale.
  const bool cacheable = request.matrix_mode == MatrixMode::kImplicit;
  size_t cache_slots = cacheable ? cache_.capacity() : 0;
  const EngineCacheStats before = cache_.stats();
  for (auto& [chain_id, cp] : plans) {
    const markov::MarkovChain& chain = db_->chain(chain_id);
    if (cp.plan == Plan::kQueryBased) {
      ++result.stats.chains_query_based;
      if (cache_slots > 0) {
        --cache_slots;
        cp.qb = cache_.Get(&chain, window);
      } else {
        cp.qb_owned = std::make_unique<QueryBasedEngine>(
            &chain, window, QueryBasedOptions{.mode = request.matrix_mode});
        cp.qb = cp.qb_owned.get();
      }
    } else {
      ++result.stats.chains_object_based;
      cp.ob = std::make_unique<ObjectBasedEngine>(
          &chain, window, ObjectBasedOptions{.mode = request.matrix_mode});
      if (request.matrix_mode == MatrixMode::kExplicit) {
        // Force the lazily built M−/M+ before threads share the engine.
        (void)cp.ob->augmented();
      }
    }
  }
  result.stats.cache_hits = cache_.stats().hits - before.hits;
  result.stats.cache_misses = cache_.stats().misses - before.misses;

  // --- Execution phase: per-object evaluation, parallel across objects. --
  const bool threshold =
      request.predicate == PredicateKind::kThresholdExists;
  std::vector<double> probs(ids.size(), 0.0);
  // Threshold qualification, decided where the probability is computed:
  // OB objects by the τ-run's verdict, everything else by comparison.
  std::vector<uint8_t> keep(ids.size(), 1);

  std::atomic<bool> failed{false};
  std::atomic<uint32_t> early_stops{0};
  std::mutex error_mu;
  util::Status first_error = util::Status::OK();

  pool_.ParallelChunks(ids.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (failed.load(std::memory_order_relaxed)) return;
      const UncertainObject& obj = db_->object(ids[i]);
      if (NeedsMultiObservation(obj)) {
        MultiObservationEngine engine(&db_->chain(obj.chain), window,
                                      {.mode = request.matrix_mode});
        util::Result<MultiObsResult> r = engine.Evaluate(obj.observations);
        if (!r.ok()) {
          failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = r.status();
          return;
        }
        probs[i] = r->exists_probability;
        if (threshold) keep[i] = probs[i] >= request.tau;
        continue;
      }
      const ChainPlan& cp = plans.at(obj.chain);
      if (cp.plan == Plan::kQueryBased) {
        probs[i] = cp.qb->ExistsProbability(obj.initial_pdf());
        if (threshold) keep[i] = probs[i] >= request.tau;
      } else if (threshold) {
        // τ-early-termination (Section V-A): decide first, compute the
        // exact probability only for qualifying objects.
        ObRunStats run;
        const ThresholdDecision d =
            cp.ob->ExistsDecision(obj.initial_pdf(), request.tau, &run);
        if (run.early_terminated) {
          early_stops.fetch_add(1, std::memory_order_relaxed);
        }
        if (d == ThresholdDecision::kYes) {
          probs[i] = cp.ob->ExistsProbability(obj.initial_pdf());
        } else {
          keep[i] = 0;
        }
      } else {
        probs[i] = cp.ob->ExistsProbability(obj.initial_pdf());
      }
    }
  });
  if (failed.load()) return first_error;
  result.stats.prune.objects_decided_early = early_stops.load();

  // --- Assembly phase: per-predicate output convention. ------------------
  switch (request.predicate) {
    case PredicateKind::kExists:
    case PredicateKind::kForAll:
      result.probabilities.reserve(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        result.probabilities.push_back(
            {ids[i], forall ? 1.0 - probs[i] : probs[i]});
      }
      break;
    case PredicateKind::kThresholdExists:
      for (size_t i = 0; i < ids.size(); ++i) {
        if (keep[i] != 0) result.probabilities.push_back({ids[i], probs[i]});
      }
      std::sort(result.probabilities.begin(), result.probabilities.end(),
                [](const ObjectProbability& a, const ObjectProbability& b) {
                  return a.id < b.id;
                });
      break;
    case PredicateKind::kTopKExists: {
      result.probabilities.reserve(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        result.probabilities.push_back({ids[i], probs[i]});
      }
      const size_t take =
          std::min<size_t>(request.k, result.probabilities.size());
      std::partial_sort(
          result.probabilities.begin(), result.probabilities.begin() + take,
          result.probabilities.end(),
          [](const ObjectProbability& a, const ObjectProbability& b) {
            if (a.probability != b.probability) {
              return a.probability > b.probability;
            }
            return a.id < b.id;
          });
      result.probabilities.resize(take);
      break;
    }
    case PredicateKind::kKTimes:
      break;  // handled by RunKTimes
  }
  return result;
}

util::Result<QueryResult> QueryExecutor::RunKTimes(
    const QueryRequest& request, const Selection& ids) {
  QueryResult result;
  result.stats.threads_used = threads_;

  // PSTkQ has no backward formulation in the paper: the per-chain forward
  // engine runs regardless of the plan directive, shared across the
  // chain's objects like a QB pass but paying one recursion per object.
  std::map<ChainId, std::unique_ptr<KTimesEngine>> engines;
  for (size_t i = 0; i < ids.size(); ++i) {
    const UncertainObject& obj = db_->object(ids[i]);
    if (NeedsMultiObservation(obj)) {
      return util::Status::Unimplemented(
          "PSTkQ under multiple observations is not covered by the paper's "
          "framework; remove multi-observation objects or query PST∃Q");
    }
    auto& engine = engines[obj.chain];
    if (!engine) {
      engine = std::make_unique<KTimesEngine>(
          &db_->chain(obj.chain), request.window,
          KTimesOptions{.mode = request.matrix_mode});
    }
    ++result.stats.objects_evaluated;
  }
  result.stats.chains_object_based = static_cast<uint32_t>(engines.size());

  result.distributions.resize(ids.size());
  pool_.ParallelChunks(ids.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const UncertainObject& obj = db_->object(ids[i]);
      result.distributions[i] = {
          ids[i], engines.at(obj.chain)->Distribution(obj.initial_pdf())};
    }
  });
  return result;
}

}  // namespace core
}  // namespace ustdb
