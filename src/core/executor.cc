#include "core/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "core/k_times.h"
#include "core/multi_observation.h"
#include "obs/trace.h"
#include "util/fault_injector.h"

namespace ustdb {
namespace core {

namespace {

/// Multi-observation objects (or single observations not at t=0) bypass
/// both single-observation plans and run the Section VI engine. The rule
/// lives on UncertainObject so the shard router's census matches exactly.
bool NeedsMultiObservation(const UncertainObject& obj) {
  return obj.needs_multi_observation_engine();
}

/// Groups of a batch are keyed by the content of the effective window
/// (region elements + time set) and the matrix mode: requests with equal
/// keys share every per-chain engine.
using GroupKey =
    std::tuple<std::vector<uint32_t>, std::vector<Timestamp>, int>;

/// Which cooperative stop fired. Workers race to record the first one they
/// observe; when a cancellation and a deadline trip simultaneously either
/// status is a faithful answer.
enum class StopReason : int { kNone = 0, kCancelled = 1, kDeadline = 2 };

util::Status StopStatus(StopReason reason) {
  return reason == StopReason::kCancelled
             ? util::Status::Cancelled("query cancelled by caller")
             : util::Status::DeadlineExceeded("query deadline exceeded");
}

/// Submission-time stop check, shared by Run and the RunBatch census: a
/// request that is already cancelled or past its deadline fails before any
/// engine is built or object evaluated.
util::Status CheckNotStopped(const QueryRequest& request) {
  if (request.cancel.stop_requested()) {
    return util::Status::Cancelled("query cancelled before execution");
  }
  if (request.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *request.deadline) {
    return util::Status::DeadlineExceeded(
        "query deadline passed before execution");
  }
  return util::Status::OK();
}

/// The cooperative stop predicate shared by both evaluation loops: polls
/// the request's token and deadline, latching which reason fired first.
/// Thread-safe; workers racing the latch may each record a reason, any
/// single observed one is a faithful answer.
class StopPoller {
 public:
  explicit StopPoller(const QueryRequest& request)
      : request_(request), has_deadline_(request.deadline.has_value()) {}

  bool ShouldStop() {
    if (reason_.load(std::memory_order_relaxed) !=
        static_cast<int>(StopReason::kNone)) {
      return true;
    }
    if (request_.cancel.stop_requested()) {
      reason_.store(static_cast<int>(StopReason::kCancelled),
                    std::memory_order_relaxed);
      return true;
    }
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= *request_.deadline) {
      reason_.store(static_cast<int>(StopReason::kDeadline),
                    std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Status of the observed stop, or OK when no stop fired.
  util::Status ToStatus() const {
    const auto reason = static_cast<StopReason>(reason_.load());
    if (reason == StopReason::kNone) return util::Status::OK();
    return StopStatus(reason);
  }

 private:
  const QueryRequest& request_;
  const bool has_deadline_;
  std::atomic<int> reason_{static_cast<int>(StopReason::kNone)};
};

}  // namespace

/// Per-run (solo) or per-group (batch), per-chain engine bundle: the
/// decided plan plus the engines realizing it. QB engines are borrowed
/// from the cache when possible, owned when the cache cannot hold the
/// run's working set or a non-default matrix mode is requested (cache
/// entries are keyed without the mode). The want_* flags are filled by
/// the batch planner so the group task knows which engines to build;
/// solo runs build exactly the decided plan's engine and leave them unset.
struct QueryExecutor::ChainPlan {
  Plan plan = Plan::kQueryBased;
  bool want_qb = false;
  bool want_ob = false;
  bool want_ktimes = false;
  const QueryBasedEngine* qb = nullptr;
  std::unique_ptr<QueryBasedEngine> qb_owned;
  std::unique_ptr<ObjectBasedEngine> ob;
  std::unique_ptr<KTimesEngine> ktimes;
  /// Batch path only: a cache-borrowed same-epoch pass for this window
  /// shifted backward by qb_shift_delta. The build phase extends it in
  /// delta steps instead of building cold; the borrow stays valid through
  /// the parallel phase because cache bookkeeping (which alone can evict)
  /// happens only on the submitting thread, before and after it.
  const QueryBasedEngine* qb_shift_base = nullptr;
  Timestamp qb_shift_delta = 0;

  /// The plan this request evaluates the chain with: its pinned plan if
  /// any, the planner's decision otherwise. Solo runs fold the pin into
  /// `plan` already, so both paths resolve identically.
  Plan Resolve(const QueryRequest& request) const {
    if (request.plan == PlanChoice::kObjectBased) return Plan::kObjectBased;
    if (request.plan == PlanChoice::kQueryBased) return Plan::kQueryBased;
    return plan;
  }
};

/// One RunBatch group: every member request shares the effective window,
/// the matrix mode, and therefore every engine in `plans`.
struct QueryExecutor::BatchGroup {
  QueryWindow window;  // effective (complemented region for ∀ members)
  MatrixMode mode = MatrixMode::kImplicit;

  /// Census of one member request, taken on the submitting thread.
  struct Member {
    size_t request_index = 0;
    std::map<ChainId, uint32_t> single_obs_per_chain;
    uint32_t multi_obs = 0;
    uint32_t singles = 0;
    /// True once the member's result slot is already filled (stopped
    /// during the bound phase); later phases skip it.
    bool resolved = false;
    /// kBoundsThenRefine members: the bound pass ran, `refine_ids` is the
    /// member's evaluated id set (undecided objects only, refined
    /// query-based) and `prune` holds the bound-phase counters. The
    /// census fields above are re-taken over the refine set.
    bool bounds = false;
    std::vector<ObjectId> refine_ids;
    PruneStats prune;
  };
  std::vector<Member> members;

  std::map<ChainId, ChainPlan> plans;
  /// Chains whose QB engine missed the cache (or is mode-uncacheable) and
  /// is built inside the group task; implicit-mode builds are inserted
  /// into the cache after the parallel phase.
  std::vector<ChainId> qb_to_build;
  /// Cache-stat deltas of this group's lookups, reported on the first
  /// successfully answered member so aggregating over members never
  /// double-counts.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  uint64_t cache_shift_extends = 0;
};

/// Shared state of one exists-family evaluation: the cooperative-stop
/// poller, the first-error latch, and the progress counters. One instance
/// per solo Run or per batch member; workers touching disjoint object
/// ranges share it through atomics only.
struct QueryExecutor::ExistsEval {
  explicit ExistsEval(const QueryRequest& request) : poller(request) {}

  bool ShouldStop() {
    return failed.load(std::memory_order_relaxed) || poller.ShouldStop();
  }

  /// Resolution status: the first evaluation error, else the stop status,
  /// else OK. Call after all workers finished.
  util::Status Finish() {
    if (failed.load()) return first_error;
    return poller.ToStatus();
  }

  StopPoller poller;
  /// True for the refine stage of a bounds-then-refine evaluation: every
  /// single-observation object resolves query-based regardless of the
  /// chain's decided plan (kept probabilities thereby stay bit-identical
  /// to the pure query-based plan's), even when the plans map is shared
  /// with differently planned batch members.
  bool force_query_based = false;
  std::atomic<bool> failed{false};
  std::atomic<uint32_t> early{0};
  std::atomic<uint32_t> singles{0};
  std::atomic<uint32_t> multis{0};
  std::mutex error_mu;
  util::Status first_error = util::Status::OK();
};

/// ExistsEval's k-times counterpart (k-times evaluation cannot fail).
struct QueryExecutor::KTimesEval {
  explicit KTimesEval(const QueryRequest& request) : poller(request) {}

  StopPoller poller;
  std::atomic<uint32_t> done{0};
};

/// Registry handles this executor feeds, resolved once at construction
/// (resolution is the only locking operation; every update below is a
/// lock-free striped-atomic add). Null when ObsOptions::enabled is false.
/// Counter families mirror ExecStats/PruneStats/EngineCacheStats field
/// for field so each event keeps exactly one increment site.
struct QueryExecutor::ObsHandles {
  int32_t shard = -1;  ///< trace-span shard, parsed from the labels

  obs::Histogram* stage_plan;
  obs::Histogram* stage_bound;
  obs::Histogram* stage_build;
  obs::Histogram* stage_evaluate;
  obs::Counter* chains_ob;
  obs::Counter* chains_qb;
  obs::Counter* objects_single;
  obs::Counter* objects_multi;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_evictions;
  obs::Counter* cache_invalidations;
  obs::Counter* cache_shift_extends;
  obs::Counter* cache_bound_hits;
  obs::Counter* cache_bound_misses;
  obs::Counter* cache_bound_evictions;
  obs::Counter* clusters_bounded;
  obs::Counter* clusters_pruned;
  obs::Counter* clusters_refined;
  obs::Counter* objects_by_bounds;
  obs::Counter* objects_refined;
  obs::Counter* objects_early;
  obs::Counter* bound_fallbacks;
  obs::Counter* runs_solo;
  obs::Counter* runs_batch;

  explicit ObsHandles(const obs::ObsOptions& options) {
    obs::MetricsRegistry* reg = options.ResolvedRegistry();
    const obs::Labels& base = options.labels;
    if (auto it = base.find("shard"); it != base.end()) {
      shard = std::atoi(it->second.c_str());
    }
    const auto with = [&base](const std::string& key,
                              const std::string& value) {
      obs::Labels l = base;
      l[key] = value;
      return l;
    };
    const char* kStage = "ustdb_exec_stage_seconds";
    const char* kStageHelp =
        "Executor stage durations (plan decision, bound pass, engine "
        "build, per-object evaluation)";
    stage_plan = reg->GetHistogram(kStage, with("stage", "plan"), kStageHelp,
                                   "seconds");
    stage_bound = reg->GetHistogram(kStage, with("stage", "bound"),
                                    kStageHelp, "seconds");
    stage_build = reg->GetHistogram(kStage, with("stage", "engine_build"),
                                    kStageHelp, "seconds");
    stage_evaluate = reg->GetHistogram(kStage, with("stage", "evaluate"),
                                       kStageHelp, "seconds");
    const char* kChains = "ustdb_exec_chains_total";
    const char* kChainsHelp = "Chain classes evaluated, by decided plan";
    chains_ob =
        reg->GetCounter(kChains, with("plan", "object_based"), kChainsHelp);
    chains_qb =
        reg->GetCounter(kChains, with("plan", "query_based"), kChainsHelp);
    const char* kObjects = "ustdb_exec_objects_total";
    const char* kObjectsHelp = "Objects answered, by engine kind";
    objects_single =
        reg->GetCounter(kObjects, with("kind", "single"), kObjectsHelp);
    objects_multi =
        reg->GetCounter(kObjects, with("kind", "multi"), kObjectsHelp);
    const char* kCache = "ustdb_exec_cache_events_total";
    const char* kCacheHelp =
        "EngineCache events (QB store and cluster bound store)";
    cache_hits = reg->GetCounter(kCache, with("kind", "hit"), kCacheHelp);
    cache_misses = reg->GetCounter(kCache, with("kind", "miss"), kCacheHelp);
    cache_evictions =
        reg->GetCounter(kCache, with("kind", "eviction"), kCacheHelp);
    cache_invalidations =
        reg->GetCounter(kCache, with("kind", "invalidation"), kCacheHelp);
    cache_shift_extends =
        reg->GetCounter(kCache, with("kind", "shift_extend"), kCacheHelp);
    cache_bound_hits =
        reg->GetCounter(kCache, with("kind", "bound_hit"), kCacheHelp);
    cache_bound_misses =
        reg->GetCounter(kCache, with("kind", "bound_miss"), kCacheHelp);
    cache_bound_evictions =
        reg->GetCounter(kCache, with("kind", "bound_eviction"), kCacheHelp);
    const char* kClusters = "ustdb_prune_clusters_total";
    const char* kClustersHelp =
        "Section V-C cluster bound-pass outcomes (see PruneStats)";
    clusters_bounded =
        reg->GetCounter(kClusters, with("outcome", "bounded"), kClustersHelp);
    clusters_pruned =
        reg->GetCounter(kClusters, with("outcome", "pruned"), kClustersHelp);
    clusters_refined =
        reg->GetCounter(kClusters, with("outcome", "refined"), kClustersHelp);
    const char* kPruneObjects = "ustdb_prune_objects_total";
    const char* kPruneObjectsHelp =
        "Per-object pruning outcomes (see PruneStats)";
    objects_by_bounds = reg->GetCounter(
        kPruneObjects, with("outcome", "decided_by_bounds"),
        kPruneObjectsHelp);
    objects_refined = reg->GetCounter(
        kPruneObjects, with("outcome", "refined"), kPruneObjectsHelp);
    objects_early = reg->GetCounter(
        kPruneObjects, with("outcome", "decided_early"), kPruneObjectsHelp);
    bound_fallbacks = reg->GetCounter(
        "ustdb_prune_bound_fallbacks_total", base,
        "Requested/chosen bound passes that fell back to per-chain plans");
    const char* kRuns = "ustdb_exec_runs_total";
    const char* kRunsHelp = "Executor entry points taken";
    runs_solo = reg->GetCounter(kRuns, with("kind", "solo"), kRunsHelp);
    runs_batch = reg->GetCounter(kRuns, with("kind", "batch"), kRunsHelp);
  }
};

/// Either the caller's filter (borrowed — the request outlives the run) or
/// the implicit identity range [0, num_objects); never materializes ids.
class QueryExecutor::Selection {
 public:
  Selection(const QueryRequest& request, uint32_t num_objects)
      : filter_(request.object_filter.has_value() ? &*request.object_filter
                                                  : nullptr),
        size_(filter_ != nullptr ? filter_->size() : num_objects) {}

  /// View of an explicit id list (the bound pass's refine set); `ids` must
  /// outlive the selection.
  explicit Selection(const std::vector<ObjectId>* ids)
      : filter_(ids), size_(ids->size()) {}

  size_t size() const { return size_; }
  ObjectId operator[](size_t i) const {
    return filter_ != nullptr ? (*filter_)[i] : static_cast<ObjectId>(i);
  }

 private:
  const std::vector<ObjectId>* filter_;
  size_t size_;
};

QueryExecutor::QueryExecutor(const Database* db, ExecutorOptions options)
    : db_(db),
      options_(options),
      threads_(util::ResolveThreadCount(options.num_threads)),
      planner_(db),
      cache_(options.cache_capacity),
      pool_(options.num_threads) {
  if (options_.obs.enabled) {
    obs_ = std::make_unique<ObsHandles>(options_.obs);
  }
}

QueryExecutor::~QueryExecutor() = default;

void QueryExecutor::FeedRunStats(const ExecStats& stats) {
  if (obs_ == nullptr) return;
  const auto add = [](obs::Counter* c, uint64_t n) {
    if (n != 0) c->Add(n);
  };
  add(obs_->chains_ob, stats.chains_object_based);
  add(obs_->chains_qb, stats.chains_query_based);
  add(obs_->objects_single, stats.objects_evaluated);
  add(obs_->objects_multi, stats.objects_multi_observation);
  add(obs_->clusters_bounded, stats.prune.clusters_bounded);
  add(obs_->clusters_pruned, stats.prune.clusters_pruned);
  add(obs_->clusters_refined, stats.prune.clusters_refined);
  add(obs_->objects_by_bounds, stats.prune.objects_decided_by_bounds);
  add(obs_->objects_refined, stats.prune.objects_refined);
  add(obs_->objects_early, stats.prune.objects_decided_early);
  add(obs_->bound_fallbacks, stats.prune.bound_fallbacks);
}

void QueryExecutor::FeedCacheDelta(const EngineCacheStats& before) {
  if (obs_ == nullptr) return;
  const EngineCacheStats& now = cache_.stats();
  const auto add = [](obs::Counter* c, uint64_t n) {
    if (n != 0) c->Add(n);
  };
  add(obs_->cache_hits, now.hits - before.hits);
  add(obs_->cache_misses, now.misses - before.misses);
  add(obs_->cache_evictions, now.evictions - before.evictions);
  add(obs_->cache_invalidations, now.invalidations - before.invalidations);
  add(obs_->cache_shift_extends, now.shift_extends - before.shift_extends);
  add(obs_->cache_bound_hits, now.bound_hits - before.bound_hits);
  add(obs_->cache_bound_misses, now.bound_misses - before.bound_misses);
  add(obs_->cache_bound_evictions,
      now.bound_evictions - before.bound_evictions);
}

void QueryExecutor::FeedStage(obs::Histogram* h, double seconds) {
  if (obs_ != nullptr) h->Observe(seconds);
}

util::Status QueryExecutor::ValidateFilter(
    const QueryRequest& request) const {
  if (!request.object_filter.has_value()) return util::Status::OK();
  for (ObjectId id : *request.object_filter) {
    if (id >= db_->num_objects()) {
      return util::Status::InvalidArgument(
          "object_filter references an id outside the database");
    }
  }
  return util::Status::OK();
}

util::Result<QueryResult> QueryExecutor::Run(const QueryRequest& request) {
  // Fault boundary: injected throws and allocation failures on this
  // (controlling) thread resolve the run as a transient error. Pool
  // workers never throw — their error paths feed ExistsEval directly.
  try {
    return RunImpl(request);
  } catch (const util::FaultInjectedError& e) {
    return util::Status::Unavailable(e.what());
  } catch (const std::bad_alloc&) {
    return util::Status::Unavailable(
        "allocation failed during query execution");
  }
}

util::Result<QueryResult> QueryExecutor::RunImpl(
    const QueryRequest& request) {
  last_stats_ = {};
  last_stats_.threads_used = threads_;
  if (util::Status status = ValidateFilter(request); !status.ok()) {
    return status;
  }
  if (util::Status status = CheckNotStopped(request); !status.ok()) {
    return status;
  }
  EngineCacheStats cache_before;
  if (obs_ != nullptr) cache_before = cache_.stats();
  // The epoch this answer reflects. The service's ingest lock keeps the
  // database frozen for the whole run, so a single stamp taken here is
  // exact; a frozen (never-appended) database reads 0.
  const DataVersion run_epoch = db_->data_version();
  const Selection ids(request, db_->num_objects());
  util::Result<QueryResult> result =
      request.degrade == DegradeMode::kBoundsOnly
          ? RunDegradedBounds(request, ids)
          : (request.predicate == PredicateKind::kKTimes
                 ? RunKTimes(request, ids)
                 : RunExistsFamily(request, ids));
  if (result.ok()) result->epoch = run_epoch;
  if (obs_ != nullptr) {
    // One feed per run: counters from the run's ExecStats (partial
    // counters of a stopped run included — that work happened), cache
    // events as the delta over the whole run.
    obs_->runs_solo->Add(1);
    FeedRunStats(last_stats_);
    FeedCacheDelta(cache_before);
  }
  return result;
}

util::Result<QueryResult> QueryExecutor::RunExistsFamily(
    const QueryRequest& request, const Selection& ids) {
  QueryResult result;
  result.stats.threads_used = threads_;

  using SClock = std::chrono::steady_clock;
  const bool timing = TimingOn(request);
  const SClock::time_point t0 = timing ? SClock::now() : SClock::time_point();

  const bool forall = request.predicate == PredicateKind::kForAll;
  // PST∀Q runs as PST∃Q on the complemented region (Section VII).
  const QueryWindow window =
      forall ? request.window.WithComplementRegion() : request.window;

  // --- Plan phase: decide per chain class, then build engines. -----------
  std::map<ChainId, uint32_t> single_obs_per_chain;
  for (size_t i = 0; i < ids.size(); ++i) {
    const UncertainObject& obj = db_->object(ids[i]);
    if (!NeedsMultiObservation(obj)) ++single_obs_per_chain[obj.chain];
  }

  // Threshold requests may route through the Section V-C cluster bound
  // pass before any per-chain planning — cost-based under kAuto, forced
  // by kBoundsThenRefine. A window whose time set is not one contiguous
  // range cannot be bounded; a forced bound plan then falls back to the
  // per-chain path below, observably (prune.bound_fallbacks).
  if (request.predicate == PredicateKind::kThresholdExists &&
      (request.plan == PlanChoice::kAuto ||
       request.plan == PlanChoice::kBoundsThenRefine)) {
    if (!window.has_contiguous_times()) {
      if (request.plan == PlanChoice::kBoundsThenRefine) {
        ++result.stats.prune.bound_fallbacks;
      }
    } else {
      std::vector<ChainLoad> loads;
      loads.reserve(single_obs_per_chain.size());
      for (const auto& [chain, count] : single_obs_per_chain) {
        loads.push_back({chain, count});
      }
      const PlanDecision bound_decision = planner_.ChooseThresholdPlan(
          window, request.matrix_mode, request.plan, loads);
      if (bound_decision.plan == Plan::kBoundsThenRefine) {
        return RunBoundsThenRefine(request, ids, window);
      }
    }
  }

  std::map<ChainId, ChainPlan> plans;
  for (const auto& [chain, count] : single_obs_per_chain) {
    plans[chain].plan = planner_.Choose(chain, request, count).plan;
  }
  const SClock::time_point t1 = timing ? SClock::now() : SClock::time_point();
  if (util::FaultInjector* fi = util::FaultInjector::Active()) {
    USTDB_RETURN_NOT_OK(fi->Inject(util::FaultPoint::kEngineBuild));
  }
  const EngineCacheStats cache_before = cache_.stats();
  BuildExistsEngines(request, window, &plans, &result.stats);
  const SClock::time_point t2 = timing ? SClock::now() : SClock::time_point();

  // --- Execution phase: per-object evaluation, parallel across objects. --
  std::vector<double> probs;
  std::vector<uint8_t> keep;
  EvalCounters counters;
  util::Status status = EvaluateExistsObjects(request, window, ids, plans,
                                              &probs, &keep, &counters);
  result.stats.prune.objects_decided_early = counters.early_stops;
  result.stats.objects_evaluated = counters.singles;
  result.stats.objects_multi_observation = counters.multis;
  last_stats_ = result.stats;
  if (timing) {
    const SClock::time_point t3 = SClock::now();
    FeedStage(obs_ != nullptr ? obs_->stage_plan : nullptr,
              std::chrono::duration<double>(t1 - t0).count());
    FeedStage(obs_ != nullptr ? obs_->stage_build : nullptr,
              std::chrono::duration<double>(t2 - t1).count());
    FeedStage(obs_ != nullptr ? obs_->stage_evaluate : nullptr,
              std::chrono::duration<double>(t3 - t2).count());
    if (request.trace != nullptr) {
      const int32_t shard = obs_ != nullptr ? obs_->shard : -1;
      char detail[64];
      std::snprintf(detail, sizeof(detail),
                    "cache_hits=%llu,misses=%llu",
                    static_cast<unsigned long long>(cache_.stats().hits -
                                                    cache_before.hits),
                    static_cast<unsigned long long>(cache_.stats().misses -
                                                    cache_before.misses));
      request.trace->Record(obs::Stage::kPlan, t0, t1, shard);
      request.trace->Record(obs::Stage::kEngineBuild, t1, t2, shard, detail);
      std::snprintf(detail, sizeof(detail), "objects=%u",
                    counters.singles + counters.multis);
      request.trace->Record(obs::Stage::kEvaluate, t2, t3, shard, detail);
    }
  }
  if (!status.ok()) return status;

  AssembleExistsResult(request, ids, probs, keep, &result);
  return result;
}

void QueryExecutor::BuildExistsEngines(const QueryRequest& request,
                                       const QueryWindow& window,
                                       std::map<ChainId, ChainPlan>* plans,
                                       ExecStats* stats) {
  // The cache serves QB chains only for the default matrix mode (cached
  // engines are built with it), and only as many chains as fit at once —
  // Get() pointers are invalidated by eviction, so entries borrowed by
  // this run must never evict each other. Overflow chains degrade to
  // owned, uncached engines instead of losing caching wholesale.
  const bool cacheable = request.matrix_mode == MatrixMode::kImplicit;
  size_t cache_slots = cacheable ? cache_.capacity() : 0;
  const EngineCacheStats before = cache_.stats();
  for (auto& [chain_id, cp] : *plans) {
    const markov::MarkovChain& chain = db_->chain(chain_id);
    if (cp.plan == Plan::kQueryBased) {
      ++stats->chains_query_based;
      if (cache_slots > 0) {
        --cache_slots;
        cp.qb = cache_.Get(&chain, window, db_->chain_epoch(chain_id));
      } else {
        cp.qb_owned = std::make_unique<QueryBasedEngine>(
            &chain, window, QueryBasedOptions{.mode = request.matrix_mode});
        cp.qb = cp.qb_owned.get();
      }
    } else {
      ++stats->chains_object_based;
      cp.ob = std::make_unique<ObjectBasedEngine>(
          &chain, window, ObjectBasedOptions{.mode = request.matrix_mode});
      if (request.matrix_mode == MatrixMode::kExplicit) {
        // Force the lazily built M−/M+ before threads share the engine.
        (void)cp.ob->augmented();
      }
    }
  }
  stats->cache_hits += cache_.stats().hits - before.hits;
  stats->cache_misses += cache_.stats().misses - before.misses;
  stats->cache_evictions += cache_.stats().evictions - before.evictions;
  stats->cache_invalidations +=
      cache_.stats().invalidations - before.invalidations;
  stats->cache_shift_extends +=
      cache_.stats().shift_extends - before.shift_extends;
}

void QueryExecutor::PartitionByCluster(
    const Selection& ids,
    std::map<uint32_t, std::vector<ObjectId>>* cluster_objects,
    std::vector<ObjectId>* refine) const {
  for (size_t i = 0; i < ids.size(); ++i) {
    const UncertainObject& obj = db_->object(ids[i]);
    if (NeedsMultiObservation(obj)) {
      refine->push_back(ids[i]);
    } else {
      (*cluster_objects)[db_->cluster_of(obj.chain)].push_back(ids[i]);
    }
  }
}

util::Status QueryExecutor::BoundClusters(
    const QueryRequest& request, const QueryWindow& window,
    const std::map<uint32_t, std::vector<ObjectId>>& cluster_objects,
    std::vector<ObjectId>* refine, PruneStats* prune) {
  StopPoller poller(request);
  for (const auto& [cluster_index, objects] : cluster_objects) {
    // Clusters are the bound pass's unit of progress: a cancellation or
    // deadline observed here abandons the remaining clusters unbounded.
    if (poller.ShouldStop()) return poller.ToStatus();

    const ChainCluster& cluster = db_->chain_clusters()[cluster_index];
    const ChainId leader = cluster.leader;
    const uint32_t num_members =
        static_cast<uint32_t>(cluster.members.size());
    // Cluster stores are tagged with the cluster's epoch: a mutation of
    // any member chain's object drops this cluster's entries lazily while
    // every other cluster keeps its envelope and bound passes.
    const DataVersion epoch = db_->cluster_epoch(cluster_index);
    const std::vector<markov::ProbBound>* bounds =
        cache_.LookupBounds(leader, num_members, window, epoch);
    if (bounds == nullptr) {
      const markov::IntervalMarkovChain* envelope =
          cache_.LookupEnvelope(leader, num_members, epoch);
      if (envelope == nullptr) {
        std::vector<const markov::MarkovChain*> members;
        members.reserve(cluster.members.size());
        for (ChainId c : cluster.members) members.push_back(&db_->chain(c));
        USTDB_ASSIGN_OR_RETURN(
            markov::IntervalMarkovChain built,
            markov::IntervalMarkovChain::FromChains(members));
        envelope = cache_.PutEnvelope(leader, num_members, std::move(built),
                                      epoch);
      }
      // Upper bounds only: the drop test below never reads lo, and
      // skipping the lower propagation halves the bound pass.
      bounds = cache_.PutBounds(
          leader, num_members, window,
          envelope->BoundExists(window.region(), window.t_begin(),
                                window.t_end(), /*with_lower=*/false),
          epoch);
    }

    ++prune->clusters_bounded;
    // The envelope sweep accumulates strictly sequentially, but the exact
    // engines the refine stage reuses run reassociating dense kernels that
    // only promise ≤1e-12 of that order — so a slack-free upper bound can
    // sit a few ulps *below* the value refinement would report. Shaving
    // the kernels' parity bound off the drop threshold keeps knife-edge
    // objects (τ pinned exactly at a probability) in the refine set, which
    // is always sound: refined objects get their exact probability.
    constexpr double kKernelParityMargin = 1e-12;
    const double drop_below = request.tau - kKernelParityMargin;
    bool any_refined = false;
    for (ObjectId id : objects) {
      const UncertainObject& obj = db_->object(id);
      double hi = 0.0;
      obj.initial_pdf().ForEachNonZero(
          [&](uint32_t s, double p) { hi += p * (*bounds)[s].hi; });
      if (hi < drop_below) {
        // Sound drop: every member chain's true P∃ is at most hi (plus
        // the kernel margin). Objects whose bound straddles (or clears) τ
        // all refine — qualifying objects need their exact probability
        // for the output anyway, so a sure-hit lower bound saves nothing.
        ++prune->objects_decided_by_bounds;
      } else {
        any_refined = true;
        refine->push_back(id);
      }
    }
    ++(any_refined ? prune->clusters_refined : prune->clusters_pruned);
  }
  return poller.ToStatus();
}

util::Result<QueryResult> QueryExecutor::RunBoundsThenRefine(
    const QueryRequest& request, const Selection& ids,
    const QueryWindow& window) {
  QueryResult result;
  result.stats.threads_used = threads_;
  PruneStats& prune = result.stats.prune;

  using SClock = std::chrono::steady_clock;
  const bool timing = TimingOn(request);
  const SClock::time_point b0 = timing ? SClock::now() : SClock::time_point();

  // --- Bound phase: group evaluated objects by chain cluster and decide
  // them against the cluster's interval bound. Multi-observation objects
  // (and observations not at t=0) skip straight to refinement — the
  // t=0 bound pass does not cover them.
  std::map<uint32_t, std::vector<ObjectId>> cluster_objects;
  std::vector<ObjectId> refine_ids;
  PartitionByCluster(ids, &cluster_objects, &refine_ids);
  prune.clusters_total = static_cast<uint32_t>(cluster_objects.size());
  if (util::Status status = BoundClusters(request, window, cluster_objects,
                                          &refine_ids, &prune);
      !status.ok()) {
    last_stats_ = result.stats;
    return status;
  }
  prune.objects_refined = static_cast<uint32_t>(refine_ids.size());
  const SClock::time_point b1 = timing ? SClock::now() : SClock::time_point();

  // --- Refine phase: one query-based engine per undecided chain, then
  // the normal threshold evaluation loop (strided sub-chunks, cooperative
  // stops) over exactly the undecided objects. Query-based refinement
  // keeps every surviving probability bit-identical to the pure
  // query-based plan's.
  std::map<ChainId, ChainPlan> plans;
  for (ObjectId id : refine_ids) {
    const UncertainObject& obj = db_->object(id);
    if (!NeedsMultiObservation(obj)) {
      plans[obj.chain].plan = Plan::kQueryBased;
    }
  }
  if (util::FaultInjector* fi = util::FaultInjector::Active()) {
    if (util::Status status = fi->Inject(util::FaultPoint::kEngineBuild);
        !status.ok()) {
      last_stats_ = result.stats;
      return status;
    }
  }
  BuildExistsEngines(request, window, &plans, &result.stats);
  const SClock::time_point b2 = timing ? SClock::now() : SClock::time_point();

  const Selection refine_sel(&refine_ids);
  std::vector<double> probs;
  std::vector<uint8_t> keep;
  EvalCounters counters;
  util::Status status =
      EvaluateExistsObjects(request, window, refine_sel, plans, &probs,
                            &keep, &counters, /*refine_query_based=*/true);
  result.stats.prune.objects_decided_early = counters.early_stops;
  result.stats.objects_evaluated = counters.singles;
  result.stats.objects_multi_observation = counters.multis;
  last_stats_ = result.stats;
  if (timing) {
    const SClock::time_point b3 = SClock::now();
    FeedStage(obs_ != nullptr ? obs_->stage_bound : nullptr,
              std::chrono::duration<double>(b1 - b0).count());
    FeedStage(obs_ != nullptr ? obs_->stage_build : nullptr,
              std::chrono::duration<double>(b2 - b1).count());
    FeedStage(obs_ != nullptr ? obs_->stage_evaluate : nullptr,
              std::chrono::duration<double>(b3 - b2).count());
    if (request.trace != nullptr) {
      const int32_t shard = obs_ != nullptr ? obs_->shard : -1;
      char detail[64];
      std::snprintf(detail, sizeof(detail), "pruned=%u,refined=%u",
                    prune.objects_decided_by_bounds, prune.objects_refined);
      request.trace->Record(obs::Stage::kBound, b0, b1, shard, detail);
      request.trace->Record(obs::Stage::kEngineBuild, b1, b2, shard);
      std::snprintf(detail, sizeof(detail), "objects=%u",
                    counters.singles + counters.multis);
      request.trace->Record(obs::Stage::kEvaluate, b2, b3, shard, detail);
    }
  }
  if (!status.ok()) return status;

  AssembleExistsResult(request, refine_sel, probs, keep, &result);
  return result;
}

util::Result<QueryResult> QueryExecutor::RunDegradedBounds(
    const QueryRequest& request, const Selection& ids) {
  QueryResult result;
  result.degraded_bounds = true;
  result.stats.threads_used = threads_;
  PruneStats& prune = result.stats.prune;

  // Only the t=0 cluster bound pass can decide anything without running
  // engines; everything outside its reach — other predicates,
  // non-contiguous windows, multi-observation objects — is reported
  // undecided over [0, 1] rather than silently guessed.
  const bool boundable =
      request.predicate == PredicateKind::kThresholdExists &&
      request.window.has_contiguous_times();
  std::map<uint32_t, std::vector<ObjectId>> cluster_objects;
  std::vector<ObjectId> unbounded;
  if (boundable) {
    PartitionByCluster(ids, &cluster_objects, &unbounded);
    prune.clusters_total = static_cast<uint32_t>(cluster_objects.size());
  } else {
    ++prune.bound_fallbacks;
    unbounded.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) unbounded.push_back(ids[i]);
  }

  StopPoller poller(request);
  // Same soundness margin as BoundClusters: the full-precision twin this
  // answer must never contradict is computed by reassociating kernels
  // that promise only 1e-12 of the sequential value, so certainty on
  // either side requires clearing τ by that margin.
  constexpr double kKernelParityMargin = 1e-12;
  for (const auto& [cluster_index, objects] : cluster_objects) {
    if (poller.ShouldStop()) {
      last_stats_ = result.stats;
      return poller.ToStatus();
    }
    const ChainCluster& cluster = db_->chain_clusters()[cluster_index];
    const ChainId leader = cluster.leader;
    const uint32_t num_members =
        static_cast<uint32_t>(cluster.members.size());
    const DataVersion epoch = db_->cluster_epoch(cluster_index);
    const std::vector<markov::ProbBound>* bounds =
        cache_.LookupBounds(leader, num_members, request.window, epoch);
    if (bounds == nullptr) {
      const markov::IntervalMarkovChain* envelope =
          cache_.LookupEnvelope(leader, num_members, epoch);
      if (envelope == nullptr) {
        std::vector<const markov::MarkovChain*> members;
        members.reserve(cluster.members.size());
        for (ChainId c : cluster.members) members.push_back(&db_->chain(c));
        USTDB_ASSIGN_OR_RETURN(
            markov::IntervalMarkovChain built,
            markov::IntervalMarkovChain::FromChains(members));
        envelope = cache_.PutEnvelope(leader, num_members, std::move(built),
                                      epoch);
      }
      // With lower bounds: unlike the refining plan, the degraded answer
      // certifies inclusion from lo. (A cached upper-only pass left by a
      // full-precision run reads lo = 0 — still sound, every would-be-
      // certain object just lands in `undecided`.)
      bounds = cache_.PutBounds(
          leader, num_members, request.window,
          envelope->BoundExists(request.window.region(),
                                request.window.t_begin(),
                                request.window.t_end(),
                                /*with_lower=*/true),
          epoch);
    }
    ++prune.clusters_bounded;
    bool any_undecided = false;
    for (ObjectId id : objects) {
      const UncertainObject& obj = db_->object(id);
      double lo = 0.0;
      double hi = 0.0;
      obj.initial_pdf().ForEachNonZero([&](uint32_t s, double p) {
        lo += p * (*bounds)[s].lo;
        hi += p * (*bounds)[s].hi;
      });
      if (hi < request.tau - kKernelParityMargin) {
        ++prune.objects_decided_by_bounds;  // certainly below τ: dropped
      } else if (lo >= request.tau + kKernelParityMargin) {
        ++prune.objects_decided_by_bounds;  // certainly above τ: kept
        result.probabilities.push_back({id, lo});
      } else {
        any_undecided = true;
        result.undecided.push_back(
            {id, std::max(0.0, lo), std::min(1.0, hi)});
      }
    }
    ++(any_undecided ? prune.clusters_refined : prune.clusters_pruned);
  }
  for (ObjectId id : unbounded) {
    result.undecided.push_back({id, 0.0, 1.0});
  }
  const auto by_id = [](const auto& a, const auto& b) { return a.id < b.id; };
  std::sort(result.probabilities.begin(), result.probabilities.end(), by_id);
  std::sort(result.undecided.begin(), result.undecided.end(), by_id);
  last_stats_ = result.stats;
  return result;
}

void QueryExecutor::EvaluateExistsRange(
    const QueryRequest& request, const QueryWindow& window,
    const Selection& ids, const std::map<ChainId, ChainPlan>& plans,
    size_t begin, size_t end, std::vector<double>* probs,
    std::vector<uint8_t>* keep, ExistsEval* ev) {
  // Kernel-dispatch fault point. This runs on pool workers, so a `throw`
  // rule must not unwind the task — it is converted right here and routed
  // through the loop's existing first-error latch, exactly like a
  // multi-observation engine failure.
  if (util::FaultInjector* fi = util::FaultInjector::Active()) {
    util::Status injected = util::Status::OK();
    try {
      injected = fi->Inject(util::FaultPoint::kKernelDispatch);
    } catch (const util::FaultInjectedError& e) {
      injected = util::Status::Unavailable(e.what());
    }
    if (!injected.ok()) {
      ev->failed.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(ev->error_mu);
      if (ev->first_error.ok()) ev->first_error = std::move(injected);
      return;
    }
  }
  const bool threshold =
      request.predicate == PredicateKind::kThresholdExists;
  for (size_t i = begin; i < end; ++i) {
    if (ev->failed.load(std::memory_order_relaxed)) return;
    const UncertainObject& obj = db_->object(ids[i]);
    if (NeedsMultiObservation(obj)) {
      MultiObservationEngine engine(&db_->chain(obj.chain), window,
                                    {.mode = request.matrix_mode});
      util::Result<MultiObsResult> r = engine.Evaluate(obj.observations);
      if (!r.ok()) {
        ev->failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(ev->error_mu);
        if (ev->first_error.ok()) ev->first_error = r.status();
        return;
      }
      (*probs)[i] = r->exists_probability;
      if (threshold) (*keep)[i] = (*probs)[i] >= request.tau;
      ev->multis.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const ChainPlan& cp = plans.at(obj.chain);
    const Plan plan =
        ev->force_query_based ? Plan::kQueryBased : cp.Resolve(request);
    if (plan == Plan::kQueryBased) {
      (*probs)[i] = cp.qb->ExistsProbability(obj.initial_pdf());
      if (threshold) (*keep)[i] = (*probs)[i] >= request.tau;
    } else if (threshold) {
      // τ-early-termination (Section V-A): decide first, compute the
      // exact probability only for qualifying objects.
      ObRunStats run;
      const ThresholdDecision d =
          cp.ob->ExistsDecision(obj.initial_pdf(), request.tau, &run);
      if (run.early_terminated) {
        ev->early.fetch_add(1, std::memory_order_relaxed);
      }
      if (d == ThresholdDecision::kYes) {
        (*probs)[i] = cp.ob->ExistsProbability(obj.initial_pdf());
      } else {
        (*keep)[i] = 0;
      }
    } else {
      (*probs)[i] = cp.ob->ExistsProbability(obj.initial_pdf());
    }
    ev->singles.fetch_add(1, std::memory_order_relaxed);
  }
}

util::Status QueryExecutor::EvaluateExistsObjects(
    const QueryRequest& request, const QueryWindow& window,
    const Selection& ids, const std::map<ChainId, ChainPlan>& plans,
    std::vector<double>* probs, std::vector<uint8_t>* keep,
    EvalCounters* counters, bool refine_query_based) {
  probs->assign(ids.size(), 0.0);
  // Threshold qualification, decided where the probability is computed:
  // OB objects by the τ-run's verdict, everything else by comparison.
  keep->assign(ids.size(), 1);

  // ev is polled between kStopCheckStride-object sub-chunks on every
  // worker; an error, a tripped cancellation token, or a passed deadline
  // makes every worker abandon its remaining objects at the next check.
  ExistsEval ev(request);
  ev.force_query_based = refine_query_based;
  pool_.ParallelChunksUntil(
      ids.size(), [&] { return ev.ShouldStop(); },
      [&](size_t begin, size_t end) {
        EvaluateExistsRange(request, window, ids, plans, begin, end, probs,
                            keep, &ev);
      });
  counters->early_stops = ev.early.load();
  counters->singles = ev.singles.load();
  counters->multis = ev.multis.load();
  return ev.Finish();
}

void QueryExecutor::AssembleExistsResult(const QueryRequest& request,
                                         const Selection& ids,
                                         const std::vector<double>& probs,
                                         const std::vector<uint8_t>& keep,
                                         QueryResult* result) {
  const bool forall = request.predicate == PredicateKind::kForAll;
  switch (request.predicate) {
    case PredicateKind::kExists:
    case PredicateKind::kForAll:
      result->probabilities.reserve(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        result->probabilities.push_back(
            {ids[i], forall ? 1.0 - probs[i] : probs[i]});
      }
      break;
    case PredicateKind::kThresholdExists:
      for (size_t i = 0; i < ids.size(); ++i) {
        if (keep[i] != 0) result->probabilities.push_back({ids[i], probs[i]});
      }
      std::sort(result->probabilities.begin(), result->probabilities.end(),
                [](const ObjectProbability& a, const ObjectProbability& b) {
                  return a.id < b.id;
                });
      break;
    case PredicateKind::kTopKExists: {
      result->probabilities.reserve(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        result->probabilities.push_back({ids[i], probs[i]});
      }
      const size_t take =
          std::min<size_t>(request.k, result->probabilities.size());
      std::partial_sort(
          result->probabilities.begin(),
          result->probabilities.begin() + take, result->probabilities.end(),
          [](const ObjectProbability& a, const ObjectProbability& b) {
            if (a.probability != b.probability) {
              return a.probability > b.probability;
            }
            return a.id < b.id;
          });
      result->probabilities.resize(take);
      break;
    }
    case PredicateKind::kKTimes:
      break;  // handled by the k-times path
  }
}

util::Result<QueryResult> QueryExecutor::RunKTimes(
    const QueryRequest& request, const Selection& ids) {
  QueryResult result;
  result.stats.threads_used = threads_;

  using SClock = std::chrono::steady_clock;
  const bool timing = TimingOn(request);
  const SClock::time_point k0 = timing ? SClock::now() : SClock::time_point();

  // PSTkQ has no backward formulation in the paper: the per-chain forward
  // engine runs regardless of the plan directive, shared across the
  // chain's objects like a QB pass but paying one recursion per object.
  if (util::FaultInjector* fi = util::FaultInjector::Active()) {
    USTDB_RETURN_NOT_OK(fi->Inject(util::FaultPoint::kEngineBuild));
  }
  std::map<ChainId, ChainPlan> plans;
  for (size_t i = 0; i < ids.size(); ++i) {
    const UncertainObject& obj = db_->object(ids[i]);
    if (NeedsMultiObservation(obj)) {
      return util::Status::Unimplemented(
          "PSTkQ under multiple observations is not covered by the paper's "
          "framework; remove multi-observation objects or query PST∃Q");
    }
    ChainPlan& cp = plans[obj.chain];
    if (cp.ktimes == nullptr) {
      cp.ktimes = std::make_unique<KTimesEngine>(
          &db_->chain(obj.chain), request.window,
          KTimesOptions{.mode = request.matrix_mode});
    }
  }
  result.stats.chains_object_based = static_cast<uint32_t>(plans.size());
  const SClock::time_point k1 = timing ? SClock::now() : SClock::time_point();

  uint32_t evaluated = 0;
  util::Status status = EvaluateKTimesObjects(request, ids, plans,
                                              &result.distributions,
                                              &evaluated);
  result.stats.objects_evaluated = evaluated;
  last_stats_ = result.stats;
  if (timing) {
    const SClock::time_point k2 = SClock::now();
    FeedStage(obs_ != nullptr ? obs_->stage_build : nullptr,
              std::chrono::duration<double>(k1 - k0).count());
    FeedStage(obs_ != nullptr ? obs_->stage_evaluate : nullptr,
              std::chrono::duration<double>(k2 - k1).count());
    if (request.trace != nullptr) {
      const int32_t shard = obs_ != nullptr ? obs_->shard : -1;
      char detail[32];
      std::snprintf(detail, sizeof(detail), "objects=%u", evaluated);
      request.trace->Record(obs::Stage::kEngineBuild, k0, k1, shard);
      request.trace->Record(obs::Stage::kEvaluate, k1, k2, shard, detail);
    }
  }
  if (!status.ok()) return status;
  return result;
}

void QueryExecutor::EvaluateKTimesRange(
    const Selection& ids, const std::map<ChainId, ChainPlan>& plans,
    size_t begin, size_t end, std::vector<ObjectKTimes>* distributions,
    KTimesEval* ev) {
  for (size_t i = begin; i < end; ++i) {
    const UncertainObject& obj = db_->object(ids[i]);
    (*distributions)[i] = {
        ids[i], plans.at(obj.chain).ktimes->Distribution(obj.initial_pdf())};
    ev->done.fetch_add(1, std::memory_order_relaxed);
  }
}

util::Status QueryExecutor::EvaluateKTimesObjects(
    const QueryRequest& request, const Selection& ids,
    const std::map<ChainId, ChainPlan>& plans,
    std::vector<ObjectKTimes>* distributions, uint32_t* evaluated) {
  distributions->resize(ids.size());
  KTimesEval ev(request);
  pool_.ParallelChunksUntil(
      ids.size(), [&] { return ev.poller.ShouldStop(); },
      [&](size_t begin, size_t end) {
        EvaluateKTimesRange(ids, plans, begin, end, distributions, &ev);
      });
  *evaluated = ev.done.load();
  return ev.poller.ToStatus();
}

std::vector<util::Result<QueryResult>> QueryExecutor::RunBatch(
    std::span<const QueryRequest> requests) {
  // Fault boundary mirroring Run(): a throw on the submitting thread
  // fails every member transiently instead of crashing. Pool tasks
  // (engine builds, evaluation subtasks) never throw.
  try {
    return RunBatchImpl(requests);
  } catch (...) {
    util::Status status = util::Status::Unavailable(
        "allocation failed during batch execution");
    try {
      throw;
    } catch (const util::FaultInjectedError& e) {
      status = util::Status::Unavailable(e.what());
    } catch (const std::bad_alloc&) {
    }
    std::vector<util::Result<QueryResult>> results;
    results.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      results.emplace_back(status);
    }
    return results;
  }
}

std::vector<util::Result<QueryResult>> QueryExecutor::RunBatchImpl(
    std::span<const QueryRequest> requests) {
  std::vector<util::Result<QueryResult>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    results.emplace_back(util::Status::Internal("batch member not executed"));
  }
  if (requests.empty()) return results;

  using SClock = std::chrono::steady_clock;
  bool timing = obs_ != nullptr;
  for (const QueryRequest& request : requests) {
    if (request.trace != nullptr) {
      timing = true;
      break;
    }
  }
  const SClock::time_point g0 = timing ? SClock::now() : SClock::time_point();
  EngineCacheStats batch_cache_before;
  if (obs_ != nullptr) batch_cache_before = cache_.stats();
  // One epoch stamp for every member: the service's ingest lock keeps the
  // database frozen across the whole batch.
  const DataVersion run_epoch = db_->data_version();

  // --- Group phase: census each request, bucket by (window, mode). -------
  std::vector<BatchGroup> groups;
  std::map<GroupKey, size_t> group_index;
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& request = requests[i];
    if (util::Status status = ValidateFilter(request); !status.ok()) {
      results[i] = std::move(status);
      continue;
    }
    // Requests already cancelled or expired at submission never join a
    // group — the dispatcher above us relies on this to resolve stale
    // tickets without paying for engines they will not use.
    if (util::Status status = CheckNotStopped(request); !status.ok()) {
      results[i] = std::move(status);
      continue;
    }
    // Degraded members never need engines: answer them from the cached
    // cluster bounds right here (cheap) and keep them out of the groups.
    if (request.degrade == DegradeMode::kBoundsOnly) {
      const Selection degraded_ids(request, db_->num_objects());
      results[i] = RunDegradedBounds(request, degraded_ids);
      continue;
    }
    BatchGroup::Member member;
    member.request_index = i;
    const Selection ids(request, db_->num_objects());
    bool unsupported = false;
    for (size_t j = 0; j < ids.size(); ++j) {
      const UncertainObject& obj = db_->object(ids[j]);
      if (NeedsMultiObservation(obj)) {
        if (request.predicate == PredicateKind::kKTimes) {
          results[i] = util::Status::Unimplemented(
              "PSTkQ under multiple observations is not covered by the "
              "paper's framework; remove multi-observation objects or "
              "query PST∃Q");
          unsupported = true;
          break;
        }
        ++member.multi_obs;
      } else {
        ++member.single_obs_per_chain[obj.chain];
        ++member.singles;
      }
    }
    if (unsupported) continue;

    const QueryWindow window =
        request.predicate == PredicateKind::kForAll
            ? request.window.WithComplementRegion()
            : request.window;
    GroupKey key{window.region().elements(), window.times(),
                 static_cast<int>(request.matrix_mode)};
    const auto [it, inserted] =
        group_index.try_emplace(std::move(key), groups.size());
    if (inserted) {
      BatchGroup group;
      group.window = window;
      group.mode = request.matrix_mode;
      groups.push_back(std::move(group));
    }
    groups[it->second].members.push_back(std::move(member));
  }

  // --- Plan phase (submitting thread): one decision per (group, chain),
  // amortized over the group's members, plus cache lookups. Engine builds
  // are deferred into the group tasks so backward passes of distinct
  // groups run concurrently. ----------------------------------------------
  for (BatchGroup& group : groups) {
    // Bound phase: threshold members eligible for the Section V-C plan
    // run their cluster bound pass now, on the submitting thread, and
    // shrink their evaluated set to the undecided objects. The envelope
    // and bound pass are memoized in the cache, so members sharing this
    // group's window pay the pass once; the cluster stores are disjoint
    // from the QB store, so these insertions can never evict backward
    // passes borrowed below.
    for (BatchGroup::Member& member : group.members) {
      const QueryRequest& request = requests[member.request_index];
      if (request.predicate != PredicateKind::kThresholdExists) continue;
      const bool forced = request.plan == PlanChoice::kBoundsThenRefine;
      if (!forced && request.plan != PlanChoice::kAuto) continue;
      if (!group.window.has_contiguous_times()) {
        if (forced) ++member.prune.bound_fallbacks;
        continue;
      }
      std::vector<ChainLoad> loads;
      loads.reserve(member.single_obs_per_chain.size());
      for (const auto& [chain, count] : member.single_obs_per_chain) {
        loads.push_back({chain, count});
      }
      if (planner_
              .ChooseThresholdPlan(group.window, group.mode, request.plan,
                                   loads)
              .plan != Plan::kBoundsThenRefine) {
        continue;
      }

      const SClock::time_point mb0 = request.trace != nullptr
                                         ? SClock::now()
                                         : SClock::time_point();
      const Selection ids(request, db_->num_objects());
      std::map<uint32_t, std::vector<ObjectId>> cluster_objects;
      PartitionByCluster(ids, &cluster_objects, &member.refine_ids);
      member.prune.clusters_total =
          static_cast<uint32_t>(cluster_objects.size());
      if (util::Status status =
              BoundClusters(request, group.window, cluster_objects,
                            &member.refine_ids, &member.prune);
          !status.ok()) {
        results[member.request_index] = std::move(status);
        member.resolved = true;
        continue;
      }
      member.prune.objects_refined =
          static_cast<uint32_t>(member.refine_ids.size());
      member.bounds = true;
      // Re-census over the refine set so plan loads, engine wants, and
      // wave sizing all see the shrunken member.
      member.single_obs_per_chain.clear();
      member.singles = 0;
      member.multi_obs = 0;
      for (ObjectId id : member.refine_ids) {
        const UncertainObject& obj = db_->object(id);
        if (NeedsMultiObservation(obj)) {
          ++member.multi_obs;
        } else {
          ++member.single_obs_per_chain[obj.chain];
          ++member.singles;
        }
      }
      if (request.trace != nullptr) {
        char detail[64];
        std::snprintf(detail, sizeof(detail), "pruned=%u,refined=%u",
                      member.prune.objects_decided_by_bounds,
                      member.prune.objects_refined);
        request.trace->Record(obs::Stage::kBound, mb0, SClock::now(),
                              obs_ != nullptr ? obs_->shard : -1, detail);
      }
    }

    std::map<ChainId, std::vector<MemberLoad>> auto_loads;
    for (const BatchGroup::Member& member : group.members) {
      if (member.resolved) continue;
      const QueryRequest& request = requests[member.request_index];
      for (const auto& [chain, count] : member.single_obs_per_chain) {
        ChainPlan& cp = group.plans[chain];
        if (request.predicate == PredicateKind::kKTimes) {
          cp.want_ktimes = true;
        } else if (member.bounds) {
          cp.want_qb = true;  // refinement is always query-based
        } else if (request.plan == PlanChoice::kObjectBased) {
          cp.want_ob = true;
        } else if (request.plan == PlanChoice::kQueryBased) {
          cp.want_qb = true;
        } else {
          // kAuto, and kBoundsThenRefine members that fell back to
          // per-chain planning (ineligible window or cost model).
          auto_loads[chain].push_back({request.predicate, count});
        }
      }
    }
    for (const auto& [chain, loads] : auto_loads) {
      ChainPlan& cp = group.plans.at(chain);
      cp.plan =
          planner_.PlanBatch(chain, group.window, group.mode, loads).plan;
      (cp.plan == Plan::kQueryBased ? cp.want_qb : cp.want_ob) = true;
    }

    // Borrow cached backward passes now: Lookup() never evicts, so every
    // borrowed pointer stays valid for the whole parallel phase. On a
    // miss, a same-epoch pass for the window shifted backward is borrowed
    // as an extension base: the build phase then runs delta steps instead
    // of a cold pass (the standing-query window-slide fast path).
    const bool cacheable = group.mode == MatrixMode::kImplicit;
    const EngineCacheStats before = cache_.stats();
    for (auto& [chain_id, cp] : group.plans) {
      if (!cp.want_qb) continue;
      if (cacheable) {
        const DataVersion epoch = db_->chain_epoch(chain_id);
        cp.qb = cache_.Lookup(&db_->chain(chain_id), group.window, epoch);
        if (cp.qb == nullptr) {
          cp.qb_shift_base = cache_.LookupShiftBase(
              &db_->chain(chain_id), group.window, epoch,
              &cp.qb_shift_delta);
        }
      }
      if (cp.qb == nullptr) {
        // Built in the parallel build phase below. The backward pass reads
        // the chain's lazily built transpose cache, which is thread-safe,
        // so no pre-materialization is needed here.
        group.qb_to_build.push_back(chain_id);
      }
    }
    group.cache_hits = cache_.stats().hits - before.hits;
    group.cache_misses = cache_.stats().misses - before.misses;
    group.cache_invalidations =
        cache_.stats().invalidations - before.invalidations;
    group.cache_shift_extends =
        cache_.stats().shift_extends - before.shift_extends;
  }
  // Batch stage attribution: the member bound passes above run on the
  // submitting thread inside this plan window, so the aggregate plan timer
  // covers them; traced members additionally get an exact kBound span.
  const SClock::time_point g1 = timing ? SClock::now() : SClock::time_point();

  // Engine-build fault point for the batch path, fired on the submitting
  // thread (pool build tasks have no error channel and must not throw): a
  // failure here fails every not-yet-resolved member transiently.
  if (util::FaultInjector* fi = util::FaultInjector::Active()) {
    if (util::Status status = fi->Inject(util::FaultPoint::kEngineBuild);
        !status.ok()) {
      for (const BatchGroup& group : groups) {
        for (const BatchGroup::Member& member : group.members) {
          if (!member.resolved) results[member.request_index] = status;
        }
      }
      return results;
    }
  }

  // --- Build phase: construct the cheap engine shells inline, then run
  // every expensive build — the query-based backward passes and the
  // explicit-mode M± materializations — as its own pool task, so even a
  // single-group batch builds its chains' engines in parallel. ------------
  struct EngineBuild {
    BatchGroup* group;
    ChainId chain;
    bool backward;  // true: QB backward pass; false: force OB's M±
  };
  std::vector<EngineBuild> builds;
  for (BatchGroup& group : groups) {
    for (ChainId chain_id : group.qb_to_build) {
      builds.push_back({&group, chain_id, /*backward=*/true});
    }
    for (auto& [chain_id, cp] : group.plans) {
      if (cp.want_ob) {
        cp.ob = std::make_unique<ObjectBasedEngine>(
            &db_->chain(chain_id), group.window,
            ObjectBasedOptions{.mode = group.mode});
        if (group.mode == MatrixMode::kExplicit) {
          // Force the lazily built M−/M+ before subtasks share the engine.
          builds.push_back({&group, chain_id, /*backward=*/false});
        }
      }
      if (cp.want_ktimes) {
        cp.ktimes = std::make_unique<KTimesEngine>(
            &db_->chain(chain_id), group.window,
            KTimesOptions{.mode = group.mode});
      }
    }
  }
  pool_.ParallelChunks(builds.size(), [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      const EngineBuild& build = builds[b];
      ChainPlan& cp = build.group->plans.at(build.chain);
      if (build.backward) {
        cp.qb_owned =
            cp.qb_shift_base != nullptr
                ? std::make_unique<QueryBasedEngine>(*cp.qb_shift_base,
                                                     build.group->window,
                                                     cp.qb_shift_delta)
                : std::make_unique<QueryBasedEngine>(
                      &db_->chain(build.chain), build.group->window,
                      QueryBasedOptions{.mode = build.group->mode});
        cp.qb = cp.qb_owned.get();
      } else {
        (void)cp.ob->augmented();
      }
    }
  });
  const SClock::time_point g2 = timing ? SClock::now() : SClock::time_point();
  SClock::time_point last_wave_end = g2;

  // --- Execution phase: flatten the per-object evaluation of every
  // member of every group into object-range subtasks of kStopCheckStride
  // objects and spread them across the pool. A batch concentrated on one
  // window — a dashboard refresh — therefore still saturates all workers
  // instead of serializing its members on one. Results are unaffected by
  // the split: every object's output is written independently, exactly as
  // in the solo path's ParallelChunksUntil loop, and each subtask
  // re-checks its member's cancellation token and deadline first,
  // preserving the cooperative-stop stride.
  //
  // Members run in *waves* whose combined object count is bounded, so
  // per-member scratch (probs/keep/distributions) peaks at roughly the
  // wave budget instead of O(batch × objects) — a 64-request refresh over
  // a million-object database must not hold 64 full result buffers at
  // once. Each wave is assembled (and its scratch freed) before the next
  // allocates; waves follow batch order, so assembly order and cache-stat
  // attribution are unchanged. ---------------------------------------------
  struct MemberExec {
    MemberExec(const QueryRequest& req, BatchGroup* g,
               const BatchGroup::Member& m, uint32_t num_objects)
        : request(req),
          group(g),
          // Bound-pass members evaluate their refine set (which outlives
          // the wave in the group's member census); everyone else their
          // request selection.
          ids(m.bounds ? Selection(&m.refine_ids)
                       : Selection(req, num_objects)),
          ktimes(req.predicate == PredicateKind::kKTimes) {
      if (ktimes) {
        ktimes_ev.emplace(req);
      } else {
        exists_ev.emplace(req);
        exists_ev->force_query_based = m.bounds;
      }
    }

    const QueryRequest& request;
    BatchGroup* group;
    Selection ids;
    bool ktimes;
    std::optional<ExistsEval> exists_ev;  // engaged iff !ktimes
    std::optional<KTimesEval> ktimes_ev;  // engaged iff ktimes
    std::vector<double> probs;
    std::vector<uint8_t> keep;
    std::vector<ObjectKTimes> distributions;
    std::atomic<uint32_t> subtasks{0};  // intra-group splits executed
  };
  struct SubTask {
    MemberExec* member;
    size_t begin;
    size_t end;
  };
  struct MemberRef {
    size_t group_index;
    const BatchGroup::Member* member;
  };
  std::vector<MemberRef> member_order;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const BatchGroup::Member& member : groups[g].members) {
      if (member.resolved) continue;  // stopped during the bound phase
      member_order.push_back({g, &member});
    }
  }
  // Per-group flag: the group's cache-stat deltas go to the first member
  // whose result is actually stored — attributing them to a member that
  // then fails would drop them, and aggregating members would no longer
  // reconcile with cache_stats(). Persistent across waves, since a
  // group's members may span several.
  std::vector<uint8_t> cache_stats_attributed(groups.size(), 0);

  /// Combined object count one wave's members may hold scratch for
  /// (~36 MB of probs + keep). A single larger member still runs alone.
  constexpr size_t kWaveObjectBudget = size_t{4} << 20;

  size_t next_member = 0;
  while (next_member < member_order.size()) {
    size_t wave_end = next_member;
    size_t wave_objects = 0;
    while (wave_end < member_order.size()) {
      const BatchGroup::Member& m = *member_order[wave_end].member;
      const size_t n_objects =
          m.bounds
              ? m.refine_ids.size()
              : Selection(requests[m.request_index], db_->num_objects())
                    .size();
      if (wave_end > next_member &&
          wave_objects + n_objects > kWaveObjectBudget) {
        break;
      }
      wave_objects += n_objects;
      ++wave_end;
    }

    std::deque<MemberExec> execs;  // deque: MemberExec holds atomics
    std::vector<SubTask> subtasks;
    for (size_t i = next_member; i < wave_end; ++i) {
      const MemberRef& mr = member_order[i];
      execs.emplace_back(requests[mr.member->request_index],
                         &groups[mr.group_index], *mr.member,
                         db_->num_objects());
      MemberExec& me = execs.back();
      if (me.ktimes) {
        me.distributions.resize(me.ids.size());
      } else {
        me.probs.assign(me.ids.size(), 0.0);
        me.keep.assign(me.ids.size(), 1);
      }
      for (size_t b = 0; b < me.ids.size(); b += util::kStopCheckStride) {
        subtasks.push_back(
            {&me, b, std::min(me.ids.size(), b + util::kStopCheckStride)});
      }
    }
    const SClock::time_point w0 =
        timing ? SClock::now() : SClock::time_point();
    pool_.ParallelChunks(subtasks.size(), [&](size_t begin, size_t end) {
      for (size_t s = begin; s < end; ++s) {
        const SubTask& task = subtasks[s];
        MemberExec& me = *task.member;
        if (me.ktimes) {
          if (me.ktimes_ev->poller.ShouldStop()) continue;
          me.subtasks.fetch_add(1, std::memory_order_relaxed);
          EvaluateKTimesRange(me.ids, me.group->plans, task.begin, task.end,
                              &me.distributions, &*me.ktimes_ev);
        } else {
          if (me.exists_ev->ShouldStop()) continue;
          me.subtasks.fetch_add(1, std::memory_order_relaxed);
          EvaluateExistsRange(me.request, me.group->window, me.ids,
                              me.group->plans, task.begin, task.end,
                              &me.probs, &me.keep, &*me.exists_ev);
        }
      }
    });
    const SClock::time_point w1 =
        timing ? SClock::now() : SClock::time_point();
    if (timing) last_wave_end = w1;

    // Assembly (calling thread): convert this wave's evaluation state
    // into result slots, in batch order, then drop the wave's scratch.
    size_t exec_index = 0;
    for (size_t i = next_member; i < wave_end; ++i) {
      const MemberRef& mr = member_order[i];
      BatchGroup& group = groups[mr.group_index];
      const BatchGroup::Member& member = *mr.member;
      MemberExec& me = execs[exec_index++];
      const auto attach_cache_stats = [&](QueryResult* result) {
        result->stats.cache_hits = group.cache_hits;
        result->stats.cache_misses = group.cache_misses;
        result->stats.cache_invalidations = group.cache_invalidations;
        result->stats.cache_shift_extends = group.cache_shift_extends;
        cache_stats_attributed[mr.group_index] = 1;
      };
      // One registry feed per successfully answered member (cache events
      // are fed once for the whole batch below, not here), plus the
      // member's trace spans: the shared plan/build phases and its wave's
      // evaluation window.
      const auto feed_member = [&](const QueryResult& r) {
        FeedRunStats(r.stats);
        if (me.request.trace == nullptr) return;
        const int32_t shard = obs_ != nullptr ? obs_->shard : -1;
        char detail[40];
        std::snprintf(detail, sizeof(detail), "batch_members=%u",
                      r.stats.batch_group_members);
        me.request.trace->Record(obs::Stage::kPlan, g0, g1, shard, detail);
        me.request.trace->Record(obs::Stage::kEngineBuild, g1, g2, shard);
        std::snprintf(detail, sizeof(detail), "subtasks=%u",
                      r.stats.group_subtasks);
        me.request.trace->Record(obs::Stage::kEvaluate, w0, w1, shard,
                                 detail);
      };
      if (me.ids.size() == 0) {
        // Zero-object members never reach a subtask's cooperative stop
        // check; poll once here so a cancellation or expiry while the
        // batch ran still resolves with its stop status, as the old
        // sequential member loop did.
        if (me.ktimes) {
          (void)me.ktimes_ev->poller.ShouldStop();
        } else {
          (void)me.exists_ev->ShouldStop();
        }
      }
      QueryResult result;
      result.stats.threads_used = threads_;
      result.stats.batch_group_members =
          static_cast<uint32_t>(group.members.size());
      result.stats.group_subtasks = me.subtasks.load();

      if (me.ktimes) {
        if (util::Status status = me.ktimes_ev->poller.ToStatus();
            !status.ok()) {
          results[member.request_index] = std::move(status);
          continue;
        }
        result.stats.chains_object_based =
            static_cast<uint32_t>(member.single_obs_per_chain.size());
        result.stats.objects_evaluated = me.ktimes_ev->done.load();
        result.distributions = std::move(me.distributions);
        if (cache_stats_attributed[mr.group_index] == 0) {
          attach_cache_stats(&result);
        }
        feed_member(result);
        results[member.request_index] = std::move(result);
        continue;
      }

      if (util::Status status = me.exists_ev->Finish(); !status.ok()) {
        results[member.request_index] = std::move(status);
        continue;
      }
      for (const auto& [chain, count] : member.single_obs_per_chain) {
        (void)count;
        const Plan plan = me.exists_ev->force_query_based
                              ? Plan::kQueryBased
                              : group.plans.at(chain).Resolve(me.request);
        if (plan == Plan::kQueryBased) {
          ++result.stats.chains_query_based;
        } else {
          ++result.stats.chains_object_based;
        }
      }
      // Bound-phase counters (zero for non-bounds members, except a
      // possible forced-plan fallback) merge with the evaluation loop's
      // early-termination count.
      result.stats.prune = member.prune;
      result.stats.prune.objects_decided_early = me.exists_ev->early.load();
      result.stats.objects_evaluated = me.exists_ev->singles.load();
      result.stats.objects_multi_observation = me.exists_ev->multis.load();
      AssembleExistsResult(me.request, me.ids, me.probs, me.keep, &result);
      if (cache_stats_attributed[mr.group_index] == 0) {
        attach_cache_stats(&result);
      }
      feed_member(result);
      results[member.request_index] = std::move(result);
    }
    next_member = wave_end;
  }

  // --- Admission phase: publish freshly built backward passes so the next
  // refresh of the same dashboard hits a warm cache. -----------------------
  for (BatchGroup& group : groups) {
    if (group.mode != MatrixMode::kImplicit) continue;
    for (ChainId chain_id : group.qb_to_build) {
      ChainPlan& cp = group.plans.at(chain_id);
      if (cp.qb_owned != nullptr) {
        cache_.Put(&db_->chain(chain_id), group.window,
                   std::move(cp.qb_owned), db_->chain_epoch(chain_id));
      }
    }
  }

  for (util::Result<QueryResult>& r : results) {
    if (r.ok()) r->epoch = run_epoch;
  }

  if (obs_ != nullptr) {
    obs_->runs_batch->Add(1);
    FeedCacheDelta(batch_cache_before);
    FeedStage(obs_->stage_plan,
              std::chrono::duration<double>(g1 - g0).count());
    FeedStage(obs_->stage_build,
              std::chrono::duration<double>(g2 - g1).count());
    FeedStage(obs_->stage_evaluate,
              std::chrono::duration<double>(last_wave_end - g2).count());
  }
  return results;
}

}  // namespace core
}  // namespace ustdb
