// Copyright 2026 the ustdb authors.
//
// PST∀Q — Section VII's for-all query, reduced to an exists query on the
// complemented region:  P∀(o, S□, T□) = 1 − P∃(o, S \ S□, T□).
// The paper notes the complement computation is usually *faster* because
// more columns of M+ are zeroed; both engines inherit that for free.

#ifndef USTDB_CORE_FORALL_H_
#define USTDB_CORE_FORALL_H_

#include "core/object_based.h"
#include "core/query_based.h"

namespace ustdb {
namespace core {

/// \brief Evaluates PST∀Q via the object-based engine.
class ForAllObjectBased {
 public:
  /// \pre same contract as ObjectBasedEngine.
  ForAllObjectBased(const markov::MarkovChain* chain, QueryWindow window,
                    ObjectBasedOptions options = {})
      : inner_(chain, window.WithComplementRegion(), options) {}

  /// P∀(o, S□, T□) for an object observed (only) at t=0 with `initial`.
  double ForAllProbability(const sparse::ProbVector& initial,
                           ObRunStats* stats = nullptr) const {
    return 1.0 - inner_.ExistsProbability(initial, stats);
  }

  /// The complemented-region exists engine doing the actual work.
  const ObjectBasedEngine& inner() const { return inner_; }

 private:
  ObjectBasedEngine inner_;
};

/// \brief Evaluates PST∀Q via the query-based engine (one backward pass,
/// then one dot product per object).
class ForAllQueryBased {
 public:
  ForAllQueryBased(const markov::MarkovChain* chain, QueryWindow window,
                   QueryBasedOptions options = {})
      : inner_(chain, window.WithComplementRegion(), options) {}

  double ForAllProbability(const sparse::ProbVector& initial) const {
    return 1.0 - inner_.ExistsProbability(initial);
  }

  const QueryBasedEngine& inner() const { return inner_; }

 private:
  QueryBasedEngine inner_;
};

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_FORALL_H_
