#include "core/absorbing.h"

#include <cassert>

#include "util/compensated_sum.h"

namespace ustdb {
namespace core {

namespace {

using sparse::CsrMatrix;
using sparse::IndexSet;
using sparse::ProbVector;
using sparse::Triplet;

/// Appends M's triplets into `out`, offset by (row_off, col_off), keeping
/// only columns selected by `keep` (nullptr keeps everything; negate flips).
void AppendShifted(const CsrMatrix& m, uint32_t row_off, uint32_t col_off,
                   const IndexSet* keep, bool negate,
                   std::vector<Triplet>* out) {
  for (uint32_t r = 0; r < m.rows(); ++r) {
    auto idx = m.RowIndices(r);
    auto val = m.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      bool in = keep == nullptr || keep->Contains(idx[k]);
      if (negate) in = !in;
      if (in) out->push_back({r + row_off, idx[k] + col_off, val[k]});
    }
  }
}

}  // namespace

AugmentedMatrices BuildAbsorbingMatrices(const markov::MarkovChain& chain,
                                         const IndexSet& region) {
  const CsrMatrix& m = chain.matrix();
  const uint32_t n = m.rows();
  const uint32_t diamond = n;

  // M− = [[M, 0], [0ᵀ, 1]].
  std::vector<Triplet> minus;
  minus.reserve(m.nnz() + 1);
  AppendShifted(m, 0, 0, nullptr, false, &minus);
  minus.push_back({diamond, diamond, 1.0});

  // M+ = [[M', sum(S□)], [0, 1]] — window columns redirected to ◆.
  std::vector<Triplet> plus;
  plus.reserve(m.nnz() + n + 1);
  AppendShifted(m, 0, 0, &region, /*negate=*/true, &plus);
  const std::vector<double> removed = m.RowMassInColumns(region);
  for (uint32_t r = 0; r < n; ++r) {
    if (removed[r] != 0.0) plus.push_back({r, diamond, removed[r]});
  }
  plus.push_back({diamond, diamond, 1.0});

  AugmentedMatrices out;
  out.minus =
      CsrMatrix::FromTriplets(n + 1, n + 1, std::move(minus)).ValueOrDie();
  out.plus =
      CsrMatrix::FromTriplets(n + 1, n + 1, std::move(plus)).ValueOrDie();
  return out;
}

AugmentedMatrices BuildAbsorbingTransposed(const markov::MarkovChain& chain,
                                           const IndexSet& region) {
  const CsrMatrix& mt = chain.transposed();  // built once per chain
  const uint32_t n = mt.rows();
  const uint32_t diamond = n;

  // (M−)ᵀ = [[Mᵀ, 0], [0ᵀ, 1]].
  std::vector<Triplet> minus_t;
  minus_t.reserve(mt.nnz() + 1);
  AppendShifted(mt, 0, 0, nullptr, false, &minus_t);
  minus_t.push_back({diamond, diamond, 1.0});

  // (M+)ᵀ = [[M'ᵀ, 0], [sum(S□)ᵀ, 1]]: transposing M's column-zeroing
  // turns into row-zeroing of Mᵀ, and the ◆ column becomes the ◆ row. The
  // skipped region rows of Mᵀ hold exactly the entries sum(S□) folds, so
  // one pass over Mᵀ yields both pieces — no second scan of M.
  // Compensated per-target accumulation in ascending region-row order
  // reproduces RowMassInColumns bit for bit (the equality test against
  // transposing the built M+ depends on it).
  std::vector<Triplet> plus_t;
  plus_t.reserve(mt.nnz() + n + 1);
  for (uint32_t r = 0; r < n; ++r) {
    if (region.Contains(r)) continue;
    auto idx = mt.RowIndices(r);
    auto val = mt.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      plus_t.push_back({r, idx[k], val[k]});
    }
  }
  std::vector<util::CompensatedSum> removed(n);
  for (uint32_t c : region) {
    auto idx = mt.RowIndices(c);
    auto val = mt.RowValues(c);
    for (size_t k = 0; k < idx.size(); ++k) {
      removed[idx[k]].Add(val[k]);
    }
  }
  for (uint32_t c = 0; c < n; ++c) {
    const double mass = removed[c].Total();
    if (mass != 0.0) plus_t.push_back({diamond, c, mass});
  }
  plus_t.push_back({diamond, diamond, 1.0});

  AugmentedMatrices out;
  out.minus =
      CsrMatrix::FromTriplets(n + 1, n + 1, std::move(minus_t)).ValueOrDie();
  out.plus =
      CsrMatrix::FromTriplets(n + 1, n + 1, std::move(plus_t)).ValueOrDie();
  return out;
}

AugmentedMatrices BuildDoubledMatrices(const markov::MarkovChain& chain,
                                       const IndexSet& region) {
  const CsrMatrix& m = chain.matrix();
  const uint32_t n = m.rows();

  // M− = [[M, 0], [0, M]].
  std::vector<Triplet> minus;
  minus.reserve(2 * m.nnz());
  AppendShifted(m, 0, 0, nullptr, false, &minus);
  AppendShifted(m, n, n, nullptr, false, &minus);

  // M+ = [[M−M'', M''], [0, M]] with M'' = columns of S□ only: a world that
  // has not hit yet and transitions into the region moves to the ◾ copy.
  std::vector<Triplet> plus;
  plus.reserve(2 * m.nnz());
  AppendShifted(m, 0, 0, &region, /*negate=*/true, &plus);  // M − M''
  AppendShifted(m, 0, n, &region, /*negate=*/false, &plus); // M''
  AppendShifted(m, n, n, nullptr, false, &plus);            // M

  AugmentedMatrices out;
  out.minus =
      CsrMatrix::FromTriplets(2 * n, 2 * n, std::move(minus)).ValueOrDie();
  out.plus =
      CsrMatrix::FromTriplets(2 * n, 2 * n, std::move(plus)).ValueOrDie();
  return out;
}

AugmentedMatrices BuildKTimesMatrices(const markov::MarkovChain& chain,
                                      const IndexSet& region,
                                      uint32_t num_window_times) {
  const CsrMatrix& m = chain.matrix();
  const uint32_t n = m.rows();
  const uint32_t levels = num_window_times + 1;  // k in {0, ..., K}
  const uint32_t dim = levels * n;

  // M− = block-diag(M, ..., M).
  std::vector<Triplet> minus;
  minus.reserve(static_cast<size_t>(levels) * m.nnz());
  for (uint32_t k = 0; k < levels; ++k) {
    AppendShifted(m, k * n, k * n, nullptr, false, &minus);
  }

  // M+ : block row k gets M−M'' on the diagonal and M'' at block k+1
  // (entering the region at a window time increments the visit counter).
  // The top level K keeps plain M — see header note.
  std::vector<Triplet> plus;
  plus.reserve(static_cast<size_t>(levels) * m.nnz());
  for (uint32_t k = 0; k + 1 < levels; ++k) {
    AppendShifted(m, k * n, k * n, &region, /*negate=*/true, &plus);
    AppendShifted(m, k * n, (k + 1) * n, &region, /*negate=*/false, &plus);
  }
  AppendShifted(m, (levels - 1) * n, (levels - 1) * n, nullptr, false, &plus);

  AugmentedMatrices out;
  out.minus = CsrMatrix::FromTriplets(dim, dim, std::move(minus)).ValueOrDie();
  out.plus = CsrMatrix::FromTriplets(dim, dim, std::move(plus)).ValueOrDie();
  return out;
}

void ClampRegionToOnes(const IndexSet& region, ProbVector* v) {
  v->ExtractMassIn(region);
  std::vector<std::pair<uint32_t, double>> region_ones;
  region_ones.reserve(region.size());
  for (uint32_t s : region) region_ones.emplace_back(s, 1.0);
  v->AddEntries(region_ones);
}

ProbVector ExtendInitialAbsorbing(const ProbVector& initial,
                                  const QueryWindow& window) {
  const uint32_t n = initial.size();
  std::vector<std::pair<uint32_t, double>> pairs;
  double hit = 0.0;
  const bool redirect = window.ContainsTime(0);
  initial.ForEachNonZero([&](uint32_t i, double x) {
    if (redirect && window.region().Contains(i)) {
      hit += x;
    } else {
      pairs.emplace_back(i, x);
    }
  });
  if (hit > 0.0) pairs.emplace_back(n, hit);
  return ProbVector::FromPairs(n + 1, std::move(pairs)).ValueOrDie();
}

ProbVector ExtendInitialDoubled(const ProbVector& initial,
                                const QueryWindow& window) {
  const uint32_t n = initial.size();
  std::vector<std::pair<uint32_t, double>> pairs;
  const bool redirect = window.ContainsTime(0);
  initial.ForEachNonZero([&](uint32_t i, double x) {
    if (redirect && window.region().Contains(i)) {
      pairs.emplace_back(n + i, x);  // already hit, still located at s_i
    } else {
      pairs.emplace_back(i, x);
    }
  });
  return ProbVector::FromPairs(2 * n, std::move(pairs)).ValueOrDie();
}

ProbVector ExtendInitialKTimes(const ProbVector& initial,
                               const QueryWindow& window,
                               uint32_t num_window_times) {
  const uint32_t n = initial.size();
  const uint32_t dim = (num_window_times + 1) * n;
  std::vector<std::pair<uint32_t, double>> pairs;
  const bool redirect = window.ContainsTime(0);
  initial.ForEachNonZero([&](uint32_t i, double x) {
    if (redirect && window.region().Contains(i)) {
      pairs.emplace_back(n + i, x);  // level k=1
    } else {
      pairs.emplace_back(i, x);      // level k=0
    }
  });
  return ProbVector::FromPairs(dim, std::move(pairs)).ValueOrDie();
}

}  // namespace core
}  // namespace ustdb
