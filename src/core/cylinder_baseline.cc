#include "core/cylinder_baseline.h"

#include <cassert>

namespace ustdb {
namespace core {

CylinderBaseline::CylinderBaseline(const markov::MarkovChain* chain,
                                   QueryWindow window)
    : chain_(chain), window_(std::move(window)) {
  assert(chain_ != nullptr);
  assert(window_.region().domain_size() == chain_->num_states());
}

std::vector<sparse::IndexSet> CylinderBaseline::ReachableSets(
    const sparse::ProbVector& initial) const {
  const uint32_t n = chain_->num_states();
  std::vector<sparse::IndexSet> sets;
  sets.reserve(window_.t_end() + 1);

  std::vector<uint32_t> frontier;
  initial.ForEachNonZero(
      [&](uint32_t s, double) { frontier.push_back(s); });
  sets.push_back(
      sparse::IndexSet::FromIndices(n, frontier).ValueOrDie());

  std::vector<uint8_t> seen(n, 0);
  for (Timestamp t = 1; t <= window_.t_end(); ++t) {
    std::fill(seen.begin(), seen.end(), 0);
    std::vector<uint32_t> next;
    for (uint32_t s : sets.back()) {
      for (uint32_t c : chain_->matrix().RowIndices(s)) {
        if (!seen[c]) {
          seen[c] = 1;
          next.push_back(c);
        }
      }
    }
    sets.push_back(sparse::IndexSet::FromIndices(n, std::move(next))
                       .ValueOrDie());
  }
  return sets;
}

CylinderAnswer CylinderBaseline::Evaluate(
    const sparse::ProbVector& initial) const {
  const std::vector<sparse::IndexSet> reach = ReachableSets(initial);
  bool any_overlap = false;
  for (Timestamp t : window_.times()) {
    const sparse::IndexSet& r = reach[t];
    uint32_t inside = 0;
    for (uint32_t s : r) {
      if (window_.region().Contains(s)) ++inside;
    }
    if (inside == r.size() && !r.empty()) return CylinderAnswer::kAlways;
    if (inside > 0) any_overlap = true;
  }
  return any_overlap ? CylinderAnswer::kPossibly : CylinderAnswer::kNever;
}

const char* CylinderAnswerToString(CylinderAnswer answer) {
  switch (answer) {
    case CylinderAnswer::kNever:
      return "never";
    case CylinderAnswer::kPossibly:
      return "possibly";
    case CylinderAnswer::kAlways:
      return "always";
  }
  return "unknown";
}

}  // namespace core
}  // namespace ustdb
