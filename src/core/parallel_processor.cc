#include "core/parallel_processor.h"

#include "core/executor.h"

namespace ustdb {
namespace core {

util::Result<std::vector<ObjectProbability>> ParallelExists(
    const Database& db, const QueryWindow& window,
    const ParallelOptions& options) {
  // The historical contract: this entry point only ever covered the
  // single-observation-at-t0 setting, so keep rejecting histories even
  // though the pipeline underneath could serve them.
  for (const UncertainObject& obj : db.objects()) {
    if (!obj.single_observation() || obj.observations.front().time != 0) {
      return util::Status::Unimplemented(
          "ParallelExists covers the single-observation-at-t0 setting; use "
          "QueryProcessor::Exists for observation histories");
    }
  }

  QueryExecutor executor(&db, {.num_threads = options.num_threads});
  QueryRequest request;
  request.predicate = PredicateKind::kExists;
  request.window = window;
  request.plan = options.plan == Plan::kObjectBased ? PlanChoice::kObjectBased
                                                    : PlanChoice::kQueryBased;
  USTDB_ASSIGN_OR_RETURN(QueryResult result, executor.Run(request));
  return std::move(result.probabilities);
}

}  // namespace core
}  // namespace ustdb
