#include "core/parallel_processor.h"

#include <map>
#include <memory>

#include "core/object_based.h"
#include "core/query_based.h"
#include "util/parallel_for.h"

namespace ustdb {
namespace core {

util::Result<std::vector<ObjectProbability>> ParallelExists(
    const Database& db, const QueryWindow& window,
    const ParallelOptions& options) {
  for (const UncertainObject& obj : db.objects()) {
    if (!obj.single_observation() || obj.observations.front().time != 0) {
      return util::Status::Unimplemented(
          "ParallelExists covers the single-observation-at-t0 setting; use "
          "QueryProcessor::Exists for observation histories");
    }
  }

  // Shared, read-only per-chain state built up front on the main thread:
  // QB start vectors (one backward pass per chain) or OB engines (which
  // are const and allocate their workspaces per call). Building eagerly
  // also forces the lazy chain transposes before threads start.
  std::map<ChainId, std::unique_ptr<QueryBasedEngine>> qb;
  std::map<ChainId, std::unique_ptr<ObjectBasedEngine>> ob;
  for (ChainId c = 0; c < db.num_chains(); ++c) {
    if (db.objects_by_chain()[c].empty()) continue;
    if (options.plan == Plan::kQueryBased) {
      qb.emplace(c, std::make_unique<QueryBasedEngine>(&db.chain(c), window));
    } else {
      ob.emplace(c,
                 std::make_unique<ObjectBasedEngine>(&db.chain(c), window));
    }
  }

  std::vector<ObjectProbability> results(db.num_objects());
  util::ParallelChunks(
      db.num_objects(), options.num_threads, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const UncertainObject& obj = db.object(static_cast<ObjectId>(i));
          double p = 0.0;
          if (options.plan == Plan::kQueryBased) {
            p = qb.at(obj.chain)->ExistsProbability(obj.initial_pdf());
          } else {
            p = ob.at(obj.chain)->ExistsProbability(obj.initial_pdf());
          }
          results[i] = {obj.id, p};
        }
      });
  return results;
}

}  // namespace core
}  // namespace ustdb
