// Copyright 2026 the ustdb authors.
//
// Congestion forecasting — the data-analysis application the paper's
// conclusion announces as future work: "find areas that are expected to
// become congested together with the time periods of this expectation".
// Because expectation is linear, the expected number of objects at state s
// at time t is simply the sum of the per-object marginals — one forward
// propagation per object, no possible-worlds blowup.

#ifndef USTDB_CORE_CONGESTION_H_
#define USTDB_CORE_CONGESTION_H_

#include <vector>

#include "core/database.h"
#include "sparse/index_set.h"
#include "util/result.h"

namespace ustdb {
namespace core {

/// \brief Expected object counts per (timestamp, state).
class ExpectedCountField {
 public:
  ExpectedCountField(uint32_t num_states, Timestamp t_max)
      : num_states_(num_states),
        counts_(static_cast<size_t>(t_max + 1) * num_states, 0.0) {}

  uint32_t num_states() const { return num_states_; }
  Timestamp t_max() const {
    return static_cast<Timestamp>(counts_.size() / num_states_) - 1;
  }

  /// E[# objects at state s at time t].
  double At(Timestamp t, StateIndex s) const {
    return counts_[static_cast<size_t>(t) * num_states_ + s];
  }

  /// Expected count inside `region` at time t.
  double RegionCount(Timestamp t, const sparse::IndexSet& region) const;

  /// Expected count inside `region` for every t (size t_max()+1) — the
  /// paper's "cars in the congested segment after 10-15 minutes" series.
  std::vector<double> RegionSeries(const sparse::IndexSet& region) const;

  double* MutableRow(Timestamp t) {
    return counts_.data() + static_cast<size_t>(t) * num_states_;
  }

 private:
  uint32_t num_states_;
  std::vector<double> counts_;  // row-major [t][s]
};

/// One congestion hotspot: a state and timestamp with high expected count.
struct Hotspot {
  Timestamp time = 0;
  StateIndex state = 0;
  double expected_count = 0.0;
};

/// \brief Propagates every object's marginals through [0, t_max] and
/// accumulates the expected-count field. All objects must reference chains
/// with the same state count; multi-observation objects contribute their
/// *first* observation's forward marginals (smoothing-based counts would
/// need per-object backward passes — see core/smoothing.h).
util::Result<ExpectedCountField> ExpectedCounts(const Database& db,
                                                Timestamp t_max);

/// \brief The k highest-expectation (state, time) pairs, descending;
/// ties broken toward earlier time, then smaller state.
std::vector<Hotspot> TopHotspots(const ExpectedCountField& field, uint32_t k);

}  // namespace core
}  // namespace ustdb

#endif  // USTDB_CORE_CONGESTION_H_
