// Copyright 2026 the ustdb authors.
//
// Discrete spatial domains. The paper's state space S ⊆ R^d is an arbitrary
// finite set of locations; the two concrete domains used by the experiments
// and examples are a 1-D line of states (synthetic datasets, where windows
// are state ranges like [100, 120]) and a 2-D raster (Figure 2's grid, the
// iceberg example). Grid2D maps between (x, y) cells and state indices and
// converts geometric regions to state sets.

#ifndef USTDB_GEO_GRID_H_
#define USTDB_GEO_GRID_H_

#include <cstdint>

#include "sparse/index_set.h"
#include "sparse/types.h"
#include "util/result.h"

namespace ustdb {
namespace geo {

/// Cell coordinate in a 2-D raster.
struct Cell {
  uint32_t x = 0;
  uint32_t y = 0;

  bool operator==(const Cell&) const = default;
};

/// \brief Row-major 2-D raster of width × height cells, each one state.
class Grid2D {
 public:
  /// Fails when either extent is zero or the cell count overflows uint32.
  static util::Result<Grid2D> Create(uint32_t width, uint32_t height);

  uint32_t width() const { return width_; }
  uint32_t height() const { return height_; }
  uint32_t num_states() const { return width_ * height_; }

  /// State index of a cell; \pre in bounds.
  StateIndex ToState(Cell c) const { return c.y * width_ + c.x; }

  /// Cell of a state index; \pre s < num_states().
  Cell ToCell(StateIndex s) const { return {s % width_, s / width_}; }

  bool InBounds(Cell c) const { return c.x < width_ && c.y < height_; }

  /// \brief States of the axis-aligned rectangle [x_lo, x_hi] × [y_lo, y_hi]
  /// (inclusive). Fails when the rectangle leaves the raster.
  util::Result<sparse::IndexSet> Rectangle(uint32_t x_lo, uint32_t y_lo,
                                           uint32_t x_hi,
                                           uint32_t y_hi) const;

  /// \brief States within Euclidean distance `radius` of cell `center`
  /// (cell-center metric). Fails when the center is out of bounds.
  util::Result<sparse::IndexSet> Disk(Cell center, double radius) const;

 private:
  Grid2D(uint32_t w, uint32_t h) : width_(w), height_(h) {}

  uint32_t width_;
  uint32_t height_;
};

}  // namespace geo
}  // namespace ustdb

#endif  // USTDB_GEO_GRID_H_
