// Copyright 2026 the ustdb authors.
//
// DriftModel — builds grid-based Markov chains whose transitions follow a
// direction field, the motion model of the paper's iceberg application
// ("the current of the water in the Atlantic ocean can be used to infer the
// transitions of icebergs").

#ifndef USTDB_GEO_DRIFT_MODEL_H_
#define USTDB_GEO_DRIFT_MODEL_H_

#include <functional>

#include "geo/grid.h"
#include "markov/markov_chain.h"
#include "util/result.h"

namespace ustdb {
namespace geo {

/// Per-cell drift: preferred displacement (dx, dy) and dispersion.
struct Drift {
  double dx = 0.0;        ///< mean eastward displacement, cells/step
  double dy = 0.0;        ///< mean southward displacement, cells/step
  double dispersion = 1.0; ///< spread of the kernel (> 0)
};

/// \brief Builds a stochastic transition matrix on `grid` where each cell
/// transitions into its (2r+1)² neighbourhood with probabilities given by a
/// discretized Gaussian centred at the cell displaced by the local drift.
/// Mass that would leave the raster is clamped to the border (icebergs do
/// not vanish at the map edge).
///
/// \param field   callback returning the drift at a cell.
/// \param radius  neighbourhood radius r in cells (>= 1).
util::Result<markov::MarkovChain> BuildDriftChain(
    const Grid2D& grid, const std::function<Drift(Cell)>& field,
    uint32_t radius);

}  // namespace geo
}  // namespace ustdb

#endif  // USTDB_GEO_DRIFT_MODEL_H_
