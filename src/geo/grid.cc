#include "geo/grid.h"

#include <cmath>

#include "util/string_util.h"

namespace ustdb {
namespace geo {

util::Result<Grid2D> Grid2D::Create(uint32_t width, uint32_t height) {
  if (width == 0 || height == 0) {
    return util::Status::InvalidArgument("grid extents must be positive");
  }
  const uint64_t cells = static_cast<uint64_t>(width) * height;
  if (cells > UINT32_MAX) {
    return util::Status::OutOfRange(util::StringPrintf(
        "grid of %ux%u cells overflows the state index space", width,
        height));
  }
  return Grid2D(width, height);
}

util::Result<sparse::IndexSet> Grid2D::Rectangle(uint32_t x_lo, uint32_t y_lo,
                                                 uint32_t x_hi,
                                                 uint32_t y_hi) const {
  if (x_lo > x_hi || y_lo > y_hi) {
    return util::Status::InvalidArgument("rectangle bounds are inverted");
  }
  if (x_hi >= width_ || y_hi >= height_) {
    return util::Status::OutOfRange("rectangle leaves the raster");
  }
  std::vector<uint32_t> states;
  states.reserve(static_cast<size_t>(x_hi - x_lo + 1) * (y_hi - y_lo + 1));
  for (uint32_t y = y_lo; y <= y_hi; ++y) {
    for (uint32_t x = x_lo; x <= x_hi; ++x) {
      states.push_back(ToState({x, y}));
    }
  }
  return sparse::IndexSet::FromIndices(num_states(), std::move(states));
}

util::Result<sparse::IndexSet> Grid2D::Disk(Cell center, double radius) const {
  if (!InBounds(center)) {
    return util::Status::OutOfRange("disk center outside the raster");
  }
  const double r2 = radius * radius;
  std::vector<uint32_t> states;
  const int64_t r_ceil = static_cast<int64_t>(std::ceil(radius));
  for (int64_t dy = -r_ceil; dy <= r_ceil; ++dy) {
    for (int64_t dx = -r_ceil; dx <= r_ceil; ++dx) {
      const int64_t x = static_cast<int64_t>(center.x) + dx;
      const int64_t y = static_cast<int64_t>(center.y) + dy;
      if (x < 0 || y < 0 || x >= width_ || y >= height_) continue;
      if (static_cast<double>(dx * dx + dy * dy) <= r2) {
        states.push_back(ToState({static_cast<uint32_t>(x),
                                  static_cast<uint32_t>(y)}));
      }
    }
  }
  return sparse::IndexSet::FromIndices(num_states(), std::move(states));
}

}  // namespace geo
}  // namespace ustdb
