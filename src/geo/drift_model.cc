#include "geo/drift_model.h"

#include <cmath>
#include <vector>

namespace ustdb {
namespace geo {

util::Result<markov::MarkovChain> BuildDriftChain(
    const Grid2D& grid, const std::function<Drift(Cell)>& field,
    uint32_t radius) {
  if (radius == 0) {
    return util::Status::InvalidArgument("drift kernel radius must be >= 1");
  }
  const int64_t r = static_cast<int64_t>(radius);
  std::vector<sparse::Triplet> triplets;
  triplets.reserve(static_cast<size_t>(grid.num_states()) * (2 * radius + 1) *
                   (2 * radius + 1) / 2);

  for (StateIndex s = 0; s < grid.num_states(); ++s) {
    const Cell c = grid.ToCell(s);
    const Drift d = field(c);
    if (d.dispersion <= 0.0) {
      return util::Status::InvalidArgument("drift dispersion must be > 0");
    }
    const double inv_two_sigma2 = 1.0 / (2.0 * d.dispersion * d.dispersion);

    double total = 0.0;
    std::vector<std::pair<StateIndex, double>> row;
    for (int64_t dy = -r; dy <= r; ++dy) {
      for (int64_t dx = -r; dx <= r; ++dx) {
        // Target cell, clamped to the raster border.
        int64_t x = static_cast<int64_t>(c.x) + dx;
        int64_t y = static_cast<int64_t>(c.y) + dy;
        x = std::min<int64_t>(std::max<int64_t>(x, 0), grid.width() - 1);
        y = std::min<int64_t>(std::max<int64_t>(y, 0), grid.height() - 1);
        const double ex = static_cast<double>(dx) - d.dx;
        const double ey = static_cast<double>(dy) - d.dy;
        const double wgt = std::exp(-(ex * ex + ey * ey) * inv_two_sigma2);
        row.emplace_back(grid.ToState({static_cast<uint32_t>(x),
                                       static_cast<uint32_t>(y)}),
                         wgt);
        total += wgt;
      }
    }
    for (const auto& [target, wgt] : row) {
      triplets.push_back({s, target, wgt / total});
    }
  }
  return markov::MarkovChain::FromTriplets(grid.num_states(),
                                           std::move(triplets));
}

}  // namespace geo
}  // namespace ustdb
