// Copyright 2026 the ustdb authors.
//
// Exhaustive possible-worlds evaluation — the test oracle. The paper notes
// the number of possible worlds is O(|S|^T), so this is only feasible for
// tiny models; every query engine in ustdb is validated against it on such
// models (the matrix framework must return exactly the fraction of possible
// worlds satisfying the predicate).

#ifndef USTDB_EXACT_POSSIBLE_WORLDS_H_
#define USTDB_EXACT_POSSIBLE_WORLDS_H_

#include <functional>
#include <vector>

#include "core/multi_observation.h"
#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "markov/time_varying_chain.h"
#include "sparse/prob_vector.h"
#include "util/result.h"

namespace ustdb {
namespace exact {

/// One possible world: a concrete trajectory and its probability.
struct World {
  std::vector<StateIndex> path;  ///< states at t = 0, 1, ..., horizon
  double probability = 0.0;
};

/// \brief Enumerates every world with positive probability up to `horizon`
/// transitions. Fails with kOutOfRange once more than `max_worlds` worlds
/// have been produced (guards against accidental exponential blowups in
/// tests).
util::Result<std::vector<World>> EnumerateWorlds(
    const markov::MarkovChain& chain, const sparse::ProbVector& initial,
    Timestamp horizon, uint64_t max_worlds = 5'000'000);

/// Exact PST∃Q by enumeration.
util::Result<double> ExistsByEnumeration(const markov::MarkovChain& chain,
                                         const sparse::ProbVector& initial,
                                         const core::QueryWindow& window,
                                         uint64_t max_worlds = 5'000'000);

/// Exact PST∀Q by enumeration.
util::Result<double> ForAllByEnumeration(const markov::MarkovChain& chain,
                                         const sparse::ProbVector& initial,
                                         const core::QueryWindow& window,
                                         uint64_t max_worlds = 5'000'000);

/// Exact PSTkQ distribution by enumeration (size |T□| + 1).
util::Result<std::vector<double>> KTimesByEnumeration(
    const markov::MarkovChain& chain, const sparse::ProbVector& initial,
    const core::QueryWindow& window, uint64_t max_worlds = 5'000'000);

/// \brief Exact multi-observation PST∃Q by enumeration: every world is
/// weighted by the likelihood of all observations (Section VI's class-A
/// worlds get weight zero); the result is P(B) / (P(B) + P(C)).
util::Result<double> MultiObsExistsByEnumeration(
    const markov::MarkovChain& chain,
    const std::vector<core::Observation>& observations,
    const core::QueryWindow& window, uint64_t max_worlds = 5'000'000);

/// \brief Enumeration over an inhomogeneous chain: the transition from
/// path position i uses chain.PhaseAt(i). Worlds start at time 0.
util::Result<std::vector<World>> EnumerateWorldsTimeVarying(
    const markov::TimeVaryingChain& chain, const sparse::ProbVector& initial,
    Timestamp horizon, uint64_t max_worlds = 5'000'000);

/// Exact PST∃Q on an inhomogeneous chain by enumeration.
util::Result<double> TimeVaryingExistsByEnumeration(
    const markov::TimeVaryingChain& chain, const sparse::ProbVector& initial,
    const core::QueryWindow& window, uint64_t max_worlds = 5'000'000);

}  // namespace exact
}  // namespace ustdb

#endif  // USTDB_EXACT_POSSIBLE_WORLDS_H_
