#include "exact/possible_worlds.h"

#include "util/compensated_sum.h"
#include "util/string_util.h"

namespace ustdb {
namespace exact {

namespace {

/// Depth-first expansion of the trajectory tree.
util::Status Expand(const markov::MarkovChain& chain, Timestamp horizon,
                    uint64_t max_worlds, std::vector<StateIndex>* path,
                    double prob, std::vector<World>* out) {
  if (path->size() == static_cast<size_t>(horizon) + 1) {
    if (out->size() >= max_worlds) {
      return util::Status::OutOfRange(util::StringPrintf(
          "more than %llu possible worlds",
          static_cast<unsigned long long>(max_worlds)));
    }
    out->push_back({*path, prob});
    return util::Status::OK();
  }
  const StateIndex s = path->back();
  auto idx = chain.matrix().RowIndices(s);
  auto val = chain.matrix().RowValues(s);
  for (size_t k = 0; k < idx.size(); ++k) {
    path->push_back(idx[k]);
    USTDB_RETURN_NOT_OK(
        Expand(chain, horizon, max_worlds, path, prob * val[k], out));
    path->pop_back();
  }
  return util::Status::OK();
}

/// Number of window timestamps at which `path` is inside the region.
uint32_t Visits(const World& w, const core::QueryWindow& window) {
  uint32_t visits = 0;
  for (Timestamp t : window.times()) {
    if (window.region().Contains(w.path[t])) ++visits;
  }
  return visits;
}

}  // namespace

util::Result<std::vector<World>> EnumerateWorlds(
    const markov::MarkovChain& chain, const sparse::ProbVector& initial,
    Timestamp horizon, uint64_t max_worlds) {
  std::vector<World> out;
  util::Status status = util::Status::OK();
  initial.ForEachNonZero([&](uint32_t s, double p) {
    if (!status.ok()) return;
    std::vector<StateIndex> path = {s};
    status = Expand(chain, horizon, max_worlds, &path, p, &out);
  });
  if (!status.ok()) return status;
  return out;
}

util::Result<double> ExistsByEnumeration(const markov::MarkovChain& chain,
                                         const sparse::ProbVector& initial,
                                         const core::QueryWindow& window,
                                         uint64_t max_worlds) {
  USTDB_ASSIGN_OR_RETURN(
      std::vector<World> worlds,
      EnumerateWorlds(chain, initial, window.t_end(), max_worlds));
  util::CompensatedSum acc;
  for (const World& w : worlds) {
    if (Visits(w, window) > 0) acc.Add(w.probability);
  }
  return acc.Total();
}

util::Result<double> ForAllByEnumeration(const markov::MarkovChain& chain,
                                         const sparse::ProbVector& initial,
                                         const core::QueryWindow& window,
                                         uint64_t max_worlds) {
  USTDB_ASSIGN_OR_RETURN(
      std::vector<World> worlds,
      EnumerateWorlds(chain, initial, window.t_end(), max_worlds));
  util::CompensatedSum acc;
  for (const World& w : worlds) {
    if (Visits(w, window) == window.num_times()) acc.Add(w.probability);
  }
  return acc.Total();
}

util::Result<std::vector<double>> KTimesByEnumeration(
    const markov::MarkovChain& chain, const sparse::ProbVector& initial,
    const core::QueryWindow& window, uint64_t max_worlds) {
  USTDB_ASSIGN_OR_RETURN(
      std::vector<World> worlds,
      EnumerateWorlds(chain, initial, window.t_end(), max_worlds));
  std::vector<util::CompensatedSum> acc(window.num_times() + 1);
  for (const World& w : worlds) {
    acc[Visits(w, window)].Add(w.probability);
  }
  std::vector<double> out(acc.size());
  for (size_t k = 0; k < acc.size(); ++k) out[k] = acc[k].Total();
  return out;
}

util::Result<double> MultiObsExistsByEnumeration(
    const markov::MarkovChain& chain,
    const std::vector<core::Observation>& observations,
    const core::QueryWindow& window, uint64_t max_worlds) {
  if (observations.empty()) {
    return util::Status::InvalidArgument("at least one observation required");
  }
  // Worlds start at the first observation time; enumerate up to the later
  // of the window end and the last observation.
  const Timestamp t_start = observations.front().time;
  const Timestamp t_stop =
      std::max(window.t_end(), observations.back().time);
  if (t_start > window.t_begin()) {
    return util::Status::Unimplemented(
        "query timestamps before the first observation are not supported");
  }
  sparse::ProbVector first = observations.front().pdf;
  USTDB_RETURN_NOT_OK(first.Normalize());
  USTDB_ASSIGN_OR_RETURN(
      std::vector<World> worlds,
      EnumerateWorlds(chain, first, t_stop - t_start, max_worlds));

  util::CompensatedSum hit;    // P(B)
  util::CompensatedSum total;  // P(B) + P(C)
  for (const World& w : worlds) {
    // Weight the world by the likelihood of the remaining observations
    // (path index is time - t_start).
    double weight = w.probability;
    for (size_t i = 1; i < observations.size(); ++i) {
      weight *=
          observations[i].pdf.Get(w.path[observations[i].time - t_start]);
    }
    if (weight == 0.0) continue;  // class A: impossible world
    bool intersects = false;
    for (Timestamp t : window.times()) {
      if (window.region().Contains(w.path[t - t_start])) {
        intersects = true;
        break;
      }
    }
    total.Add(weight);
    if (intersects) hit.Add(weight);
  }
  if (total.Total() <= 0.0) {
    return util::Status::Inconsistent(
        "no possible world survives the observations");
  }
  return hit.Total() / total.Total();
}

namespace {

util::Status ExpandTimeVarying(const markov::TimeVaryingChain& chain,
                               Timestamp horizon, uint64_t max_worlds,
                               std::vector<StateIndex>* path, double prob,
                               std::vector<World>* out) {
  if (path->size() == static_cast<size_t>(horizon) + 1) {
    if (out->size() >= max_worlds) {
      return util::Status::OutOfRange(util::StringPrintf(
          "more than %llu possible worlds",
          static_cast<unsigned long long>(max_worlds)));
    }
    out->push_back({*path, prob});
    return util::Status::OK();
  }
  const Timestamp t = static_cast<Timestamp>(path->size() - 1);
  const sparse::CsrMatrix& m = chain.PhaseAt(t).matrix();
  const StateIndex s = path->back();
  auto idx = m.RowIndices(s);
  auto val = m.RowValues(s);
  for (size_t k = 0; k < idx.size(); ++k) {
    path->push_back(idx[k]);
    USTDB_RETURN_NOT_OK(ExpandTimeVarying(chain, horizon, max_worlds, path,
                                          prob * val[k], out));
    path->pop_back();
  }
  return util::Status::OK();
}

}  // namespace

util::Result<std::vector<World>> EnumerateWorldsTimeVarying(
    const markov::TimeVaryingChain& chain, const sparse::ProbVector& initial,
    Timestamp horizon, uint64_t max_worlds) {
  std::vector<World> out;
  util::Status status = util::Status::OK();
  initial.ForEachNonZero([&](uint32_t s, double p) {
    if (!status.ok()) return;
    std::vector<StateIndex> path = {s};
    status =
        ExpandTimeVarying(chain, horizon, max_worlds, &path, p, &out);
  });
  if (!status.ok()) return status;
  return out;
}

util::Result<double> TimeVaryingExistsByEnumeration(
    const markov::TimeVaryingChain& chain, const sparse::ProbVector& initial,
    const core::QueryWindow& window, uint64_t max_worlds) {
  USTDB_ASSIGN_OR_RETURN(
      std::vector<World> worlds,
      EnumerateWorldsTimeVarying(chain, initial, window.t_end(), max_worlds));
  util::CompensatedSum acc;
  for (const World& w : worlds) {
    if (Visits(w, window) > 0) acc.Add(w.probability);
  }
  return acc.Total();
}

}  // namespace exact
}  // namespace ustdb
