// Copyright 2026 the ustdb authors.
//
// Result<T> — a value-or-Status container (Arrow's Result / absl::StatusOr
// idiom) used by every fallible factory in ustdb.

#ifndef USTDB_UTIL_RESULT_H_
#define USTDB_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ustdb {
namespace util {

/// \brief Holds either a successfully computed T or the Status explaining
/// why it could not be computed.
///
/// Usage:
/// \code
///   Result<CsrMatrix> r = CsrMatrix::FromTriplets(...);
///   if (!r.ok()) return r.status();
///   CsrMatrix m = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Const access to the value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }

  /// Moves the value out; requires ok(). Mirrors Arrow's ValueOrDie.
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when not ok.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace ustdb

/// Assigns the value of a Result expression to `lhs` or propagates its error.
#define USTDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define USTDB_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define USTDB_ASSIGN_OR_RETURN_NAME(a, b) USTDB_ASSIGN_OR_RETURN_CONCAT(a, b)

#define USTDB_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  USTDB_ASSIGN_OR_RETURN_IMPL(                                               \
      USTDB_ASSIGN_OR_RETURN_NAME(_ustdb_result_, __LINE__), lhs, rexpr)

#endif  // USTDB_UTIL_RESULT_H_
