// Copyright 2026 the ustdb authors.
//
// Small string helpers shared by the IO module and the bench harness.

#ifndef USTDB_UTIL_STRING_UTIL_H_
#define USTDB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace ustdb {
namespace util {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a non-negative integer; fails on trailing garbage.
Result<uint64_t> ParseU64(std::string_view s);

/// Parses a double; fails on trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace util
}  // namespace ustdb

#endif  // USTDB_UTIL_STRING_UTIL_H_
