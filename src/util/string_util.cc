#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <string>

namespace ustdb {
namespace util {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
          s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

Result<uint64_t> ParseU64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("not an unsigned integer: '" +
                                     std::string(s) + "'");
    }
    uint64_t next = value * 10 + static_cast<uint64_t>(c - '0');
    if (next < value) {
      return Status::OutOfRange("integer overflow: '" + std::string(s) + "'");
    }
    value = next;
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty double field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return value;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, ap_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(ap_copy);
  return out;
}

}  // namespace util
}  // namespace ustdb
