// Copyright 2026 the ustdb authors.
//
// Kahan–Babuška compensated summation. Query windows can span hundreds of
// transitions; plain accumulation of probability mass loses enough precision
// to break the mass-conservation invariants we assert, so every reduction of
// probability values routes through this accumulator.

#ifndef USTDB_UTIL_COMPENSATED_SUM_H_
#define USTDB_UTIL_COMPENSATED_SUM_H_

#include <cmath>

namespace ustdb {
namespace util {

/// \brief Neumaier's improved Kahan summation.
class CompensatedSum {
 public:
  CompensatedSum() = default;

  /// Adds one term.
  void Add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  /// Current compensated total.
  double Total() const { return sum_ + comp_; }

  /// Resets to zero.
  void Reset() {
    sum_ = 0.0;
    comp_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Compensated sum over a contiguous range.
inline double SumCompensated(const double* data, size_t n) {
  CompensatedSum acc;
  for (size_t i = 0; i < n; ++i) acc.Add(data[i]);
  return acc.Total();
}

}  // namespace util
}  // namespace ustdb

#endif  // USTDB_UTIL_COMPENSATED_SUM_H_
