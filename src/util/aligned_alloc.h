// Copyright 2026 the ustdb authors.
//
// 64-byte-aligned allocation for the dense buffers the SpMV kernels sweep.
// Vector loads/stores do not require alignment for correctness, but a
// cache-line-aligned head keeps every 8-double block of a buffer inside one
// line and lets the AVX2 kernels use aligned stores on their main loops, so
// all dense ProbVector / CsrMatrix / workspace storage routes through this
// allocator (asserted in debug builds at the kernel entry points).

#ifndef USTDB_UTIL_ALIGNED_ALLOC_H_
#define USTDB_UTIL_ALIGNED_ALLOC_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace ustdb {
namespace util {

/// Cache-line alignment used for all kernel-visible dense buffers.
inline constexpr size_t kKernelAlignment = 64;

/// \brief Minimal std::allocator replacement returning `kAlign`-aligned
/// blocks via the C++17 aligned operator new. Stateless; all instances
/// compare equal, so vectors using it move/swap buffers freely.
template <typename T, size_t kAlign = kKernelAlignment>
class AlignedAllocator {
 public:
  static_assert((kAlign & (kAlign - 1)) == 0, "alignment must be a power of 2");
  static_assert(kAlign >= alignof(T), "alignment below the type's natural one");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, kAlign>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, kAlign>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }

  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kAlign});
  }
};

template <typename T, size_t A, typename U, size_t B>
bool operator==(const AlignedAllocator<T, A>&, const AlignedAllocator<U, B>&) {
  return A == B;
}

/// std::vector whose heap buffer head is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` is aligned to `alignment` bytes (null counts as aligned,
/// matching an empty vector's data()).
inline bool IsKernelAligned(const void* p,
                            size_t alignment = kKernelAlignment) {
  return reinterpret_cast<uintptr_t>(p) % alignment == 0;
}

}  // namespace util
}  // namespace ustdb

#endif  // USTDB_UTIL_ALIGNED_ALLOC_H_
