// Copyright 2026 the ustdb authors.
//
// Cooperative cancellation for long-running queries. A CancellationSource
// owns the stop flag; the CancellationTokens it hands out are cheap,
// copyable views polled by workers between chunks of a parallel loop
// (std::stop_token idiom, without tying the lifetime to a jthread). The
// QueryService resolves a cancelled request with Status::Cancelled as soon
// as the executor's loop observes the token — a revoked dashboard widget
// stops consuming pool time mid-flight instead of running to completion.

#ifndef USTDB_UTIL_CANCELLATION_H_
#define USTDB_UTIL_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

namespace ustdb {
namespace util {

namespace internal {

/// Shared stop state: a flag, an optional upstream token to mirror, and an
/// optional poll budget for deterministic mid-loop stops in tests.
struct CancelState {
  std::atomic<bool> stop_requested{false};
  /// When >= 0, the number of further polls after which the flag trips on
  /// its own (deterministic under single-threaded polling). -1 = disabled.
  std::atomic<int64_t> poll_budget{-1};
  /// Upstream state linked by CancellationSource(CancellationToken): a stop
  /// requested upstream is observed by every downstream token.
  std::shared_ptr<CancelState> upstream;

  bool Poll() {
    if (stop_requested.load(std::memory_order_relaxed)) return true;
    if (upstream != nullptr && upstream->Poll()) {
      stop_requested.store(true, std::memory_order_relaxed);
      return true;
    }
    int64_t budget = poll_budget.load(std::memory_order_relaxed);
    if (budget >= 0 &&
        poll_budget.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      stop_requested.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

}  // namespace internal

/// \brief Copyable, pollable view of a CancellationSource's stop flag.
///
/// A default-constructed token is "null": it never requests a stop and
/// polls in one predictable branch, so request structs can carry one
/// unconditionally. Thread-safe: any number of threads may poll
/// concurrently with a RequestStop().
class CancellationToken {
 public:
  /// Null token — stop_requested() is always false.
  CancellationToken() = default;

  /// True once the owning source requested a stop (or the poll budget ran
  /// out). Safe to call from any thread at any rate; a relaxed atomic load
  /// on the fast path.
  bool stop_requested() const {
    return state_ != nullptr && state_->Poll();
  }

  /// True when the token is connected to a source (i.e. can ever stop).
  bool can_stop() const { return state_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::CancelState> state_;
};

/// \brief Owner of a stop flag; hands out CancellationTokens and trips
/// them. One source per request: the QueryService creates one per ticket
/// so QueryTicket::Cancel() reaches the executor's loop.
class CancellationSource {
 public:
  CancellationSource()
      : state_(std::make_shared<internal::CancelState>()) {}

  /// Links this source below `upstream`: tokens of this source also stop
  /// when `upstream` stops (linked-token idiom). A null upstream yields a
  /// plain unlinked source.
  explicit CancellationSource(const CancellationToken& upstream)
      : CancellationSource() {
    state_->upstream = upstream.state_;
  }

  /// A token observing this source (and any linked upstream).
  CancellationToken token() const { return CancellationToken(state_); }

  /// Trips the flag; every token observes it on its next poll.
  void RequestStop() {
    state_->stop_requested.store(true, std::memory_order_relaxed);
  }

  /// True once RequestStop() was called (or the poll budget ran out).
  bool stop_requested() const { return state_->Poll(); }

  /// \brief Trips the flag after `polls` further token polls — a
  /// deterministic way to stop a single-threaded run provably mid-loop
  /// (tests use it to show a cancelled run evaluates fewer objects than
  /// its uncancelled twin). Deterministic only under single-threaded
  /// polling; concurrent pollers make the trip point approximate.
  void RequestStopAfterPolls(uint64_t polls) {
    state_->poll_budget.store(static_cast<int64_t>(polls),
                              std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace util
}  // namespace ustdb

#endif  // USTDB_UTIL_CANCELLATION_H_
