// Copyright 2026 the ustdb authors.
//
// Data-parallel primitives used by the query executor. Both the one-shot
// ParallelChunks and the persistent ThreadPool use plain std::thread with
// static chunking: query workloads are uniform (every object costs roughly
// the same), so work stealing would buy nothing and the static scheme keeps
// results bit-reproducible — the same (n, num_threads) pair always yields
// the same chunk boundaries, regardless of which primitive runs them.

#ifndef USTDB_UTIL_PARALLEL_FOR_H_
#define USTDB_UTIL_PARALLEL_FOR_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ustdb {
namespace util {

/// Number of worker threads to use for `requested` (0 = hardware default).
/// Always returns at least 1, even when hardware_concurrency() reports 0
/// (which the standard permits on exotic platforms).
inline unsigned ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Static chunk size for splitting [0, n) across `workers` workers.
inline size_t ChunkSize(size_t n, unsigned workers) {
  return (n + workers - 1) / workers;
}

/// How many elements a worker processes between two cooperative stop
/// checks. Small enough that a cancelled query stops within microseconds,
/// large enough that the check (an atomic load, plus a clock read when a
/// deadline is set) is amortized to nothing.
inline constexpr size_t kStopCheckStride = 64;

/// \brief Runs f(begin, end) over [begin, end) in sub-ranges of at most
/// `stride` elements, calling should_stop() before each sub-range and
/// abandoning the rest of the range once it returns true. The executor
/// threads cancellation tokens and deadlines through this: a stopped
/// worker leaves its remaining objects unevaluated. Sub-chunking never
/// changes results — every element's output is written independently, so
/// boundaries are invisible to completed work.
template <typename StopFn, typename F>
void ChunksUntil(size_t begin, size_t end, size_t stride, StopFn&& should_stop,
                 F&& f) {
  if (begin >= end) {
    f(begin, end);
    return;
  }
  for (size_t sub = begin; sub < end; sub += stride) {
    if (should_stop()) return;
    f(sub, std::min(end, sub + stride));
  }
}

/// \brief Runs f(begin, end) over disjoint contiguous chunks of [0, n) on
/// `num_threads` threads (0 = hardware default). f must be thread-safe
/// across disjoint ranges. Blocks until every chunk is done.
///
/// Guarantees: n == 0 invokes f(0, 0) once on the calling thread and spawns
/// no threads; num_threads > n clamps to n so no thread receives an empty
/// chunk; num_threads <= 1 runs entirely on the calling thread.
template <typename F>
void ParallelChunks(size_t n, unsigned num_threads, F&& f) {
  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(ResolveThreadCount(num_threads),
                                             n == 0 ? 1 : n));
  if (workers <= 1 || n == 0) {
    f(static_cast<size_t>(0), n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const size_t chunk = ChunkSize(n, workers);
  for (unsigned w = 0; w < workers; ++w) {
    const size_t begin = static_cast<size_t>(w) * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&f, begin, end] { f(begin, end); });
  }
  for (std::thread& t : threads) t.join();
}

/// \brief Persistent worker pool with the same static-chunking semantics as
/// ParallelChunks, amortizing thread creation across queries — the
/// QueryExecutor owns one and reuses it for every request it serves.
///
/// A pool constructed with num_threads <= 1 (after hardware resolution)
/// spawns no threads at all and runs every job inline, which keeps the
/// sequential facades (QueryProcessor et al.) allocation-cheap.
///
/// ParallelChunks() may be called from one thread at a time (the executor
/// serializes); worker threads must not re-enter the pool.
class ThreadPool {
 public:
  /// \param num_threads 0 = one worker per hardware context.
  explicit ThreadPool(unsigned num_threads = 0) {
    const unsigned workers = ResolveThreadCount(num_threads);
    if (workers <= 1) return;
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Number of pooled worker threads (0 when the pool runs inline).
  unsigned num_workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// \brief Runs f(begin, end) over disjoint contiguous chunks of [0, n),
  /// blocking until done. Chunk boundaries are identical to
  /// util::ParallelChunks(n, std::max(1u, num_workers()), f), so results
  /// are bit-reproducible across the two primitives. n == 0 invokes
  /// f(0, 0) inline; jobs smaller than the pool use only the first
  /// ceil(n/chunk) workers.
  template <typename F>
  void ParallelChunks(size_t n, F&& f) {
    const unsigned workers = static_cast<unsigned>(
        std::min<size_t>(threads_.empty() ? 1 : threads_.size(),
                         n == 0 ? 1 : n));
    if (workers <= 1 || n == 0) {
      f(static_cast<size_t>(0), n);
      return;
    }
    const size_t chunk = ChunkSize(n, workers);
    const unsigned slices =
        static_cast<unsigned>((n + chunk - 1) / chunk);  // all non-empty
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = [&f](size_t begin, size_t end) { f(begin, end); };
      job_n_ = n;
      job_chunk_ = chunk;
      job_slices_ = slices;
      pending_ = slices;
      ++generation_;
    }
    wake_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }

  /// \brief ParallelChunks with cooperative stops: every worker processes
  /// its chunk in sub-ranges of at most `stride` elements and abandons the
  /// remainder once should_stop() returns true. should_stop must be
  /// thread-safe (the executor's is an atomic token poll plus an optional
  /// deadline check). Chunk boundaries — and therefore results of work
  /// that does complete — are identical to ParallelChunks(n, f).
  template <typename StopFn, typename F>
  void ParallelChunksUntil(size_t n, StopFn&& should_stop, F&& f,
                           size_t stride = kStopCheckStride) {
    ParallelChunks(n, [&](size_t begin, size_t end) {
      ChunksUntil(begin, end, stride, should_stop, f);
    });
  }

 private:
  void WorkerLoop(unsigned index) {
    uint64_t seen = 0;
    for (;;) {
      std::function<void(size_t, size_t)> job;
      size_t begin = 0;
      size_t end = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_cv_.wait(lock,
                      [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        if (index < job_slices_) {
          begin = static_cast<size_t>(index) * job_chunk_;
          end = std::min(job_n_, begin + job_chunk_);
          job = job_;
        }
      }
      if (!job) continue;  // this worker has no slice in the current job
      job(begin, end);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --pending_;
        if (pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::function<void(size_t, size_t)> job_;
  size_t job_n_ = 0;
  size_t job_chunk_ = 0;
  unsigned job_slices_ = 0;
  unsigned pending_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace util
}  // namespace ustdb

#endif  // USTDB_UTIL_PARALLEL_FOR_H_
