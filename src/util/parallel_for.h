// Copyright 2026 the ustdb authors.
//
// Minimal data-parallel loop used by the parallel query processor. We use
// plain std::thread with static chunking: query workloads are uniform
// (every object costs roughly the same), so work stealing would buy
// nothing and the static scheme keeps results bit-reproducible.

#ifndef USTDB_UTIL_PARALLEL_FOR_H_
#define USTDB_UTIL_PARALLEL_FOR_H_

#include <cstddef>
#include <thread>
#include <vector>

namespace ustdb {
namespace util {

/// Number of worker threads to use for `requested` (0 = hardware default).
inline unsigned ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// \brief Runs f(begin, end) over disjoint contiguous chunks of [0, n) on
/// `num_threads` threads (0 = hardware default). f must be thread-safe
/// across disjoint ranges. Blocks until every chunk is done.
template <typename F>
void ParallelChunks(size_t n, unsigned num_threads, F&& f) {
  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(ResolveThreadCount(num_threads),
                                             n == 0 ? 1 : n));
  if (workers <= 1 || n == 0) {
    f(static_cast<size_t>(0), n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const size_t chunk = (n + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const size_t begin = static_cast<size_t>(w) * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&f, begin, end] { f(begin, end); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace util
}  // namespace ustdb

#endif  // USTDB_UTIL_PARALLEL_FOR_H_
