#include "util/fault_injector.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace ustdb {
namespace util {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

std::string_view FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kQueueAdmission:
      return "queue_admission";
    case FaultPoint::kDispatch:
      return "dispatch";
    case FaultPoint::kEngineBuild:
      return "engine_build";
    case FaultPoint::kKernelDispatch:
      return "kernel_dispatch";
    case FaultPoint::kCacheAdmission:
      return "cache_admission";
    case FaultPoint::kMerge:
      return "merge";
    case FaultPoint::kIngest:
      return "ingest";
  }
  return "unknown";
}

namespace {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFail:
      return "fail";
    case FaultKind::kThrow:
      return "throw";
    case FaultKind::kStall:
      return "stall";
  }
  return "unknown";
}

/// Parses "50ms" / "250us" / "1s" into microseconds.
Result<std::chrono::microseconds> ParseDuration(std::string_view s) {
  size_t digits = 0;
  while (digits < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[digits])) != 0)) {
    ++digits;
  }
  if (digits == 0) {
    return Status::InvalidArgument("duration must start with digits: '" +
                                   std::string(s) + "'");
  }
  auto value = ParseU64(s.substr(0, digits));
  if (!value.ok()) return value.status();
  const std::string_view suffix = s.substr(digits);
  uint64_t factor = 0;
  if (suffix == "us") {
    factor = 1;
  } else if (suffix == "ms") {
    factor = 1000;
  } else if (suffix == "s") {
    factor = 1000000;
  } else {
    return Status::InvalidArgument("duration needs a us/ms/s suffix: '" +
                                   std::string(s) + "'");
  }
  return std::chrono::microseconds(*value * factor);
}

/// Resolves `site` to a point and an optional shard restriction.
Status ParseSite(std::string_view site, FaultPoint* point, int32_t* shard) {
  *shard = -1;
  for (int p = 0; p < kNumFaultPoints; ++p) {
    if (site == FaultPointName(static_cast<FaultPoint>(p))) {
      *point = static_cast<FaultPoint>(p);
      return Status::OK();
    }
  }
  constexpr std::string_view kShardPrefix = "shard";
  if (site.size() > kShardPrefix.size() &&
      site.substr(0, kShardPrefix.size()) == kShardPrefix) {
    auto index = ParseU64(site.substr(kShardPrefix.size()));
    if (index.ok() && *index <= 0x7fffffff) {
      *point = FaultPoint::kDispatch;
      *shard = static_cast<int32_t>(*index);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown fault site '" + std::string(site) +
                                 "'");
}

/// Per-rule fire counters on the global registry, so injected faults show
/// up next to the service/executor metrics they perturb. Resolved once at
/// parse time; a detached test registry is not supported here — fault
/// counts are also readable directly via FaultInjector::fired().
obs::Counter* FireCounter(const FaultRule& rule) {
  obs::Labels labels{
      {"fault_point", std::string(FaultPointName(rule.point))},
      {"kind", std::string(FaultKindName(rule.kind))},
  };
  if (rule.shard >= 0) labels.emplace("shard", std::to_string(rule.shard));
  return obs::MetricsRegistry::Global()->GetCounter(
      "ustdb_faults_injected_total", labels,
      "Fault-injector rule firings by point and kind");
}

}  // namespace

Result<std::unique_ptr<FaultInjector>> FaultInjector::Parse(
    std::string_view spec, uint64_t seed) {
  std::unique_ptr<FaultInjector> injector(new FaultInjector(seed));
  for (std::string_view entry_raw : Split(spec, ';')) {
    const std::string_view entry = Trim(entry_raw);
    if (entry.empty()) continue;
    const std::vector<std::string_view> fields = Split(entry, ':');
    if (fields.size() < 2) {
      return Status::InvalidArgument("fault entry needs site:action: '" +
                                     std::string(entry) + "'");
    }
    FaultRule rule;
    USTDB_RETURN_NOT_OK(ParseSite(Trim(fields[0]), &rule.point, &rule.shard));
    const std::string_view action = Trim(fields[1]);
    if (action == "fail") {
      rule.kind = FaultKind::kFail;
    } else if (action == "throw") {
      rule.kind = FaultKind::kThrow;
    } else if (action == "stall") {
      rule.kind = FaultKind::kStall;
    } else {
      return Status::InvalidArgument("unknown fault action '" +
                                     std::string(action) + "' in '" +
                                     std::string(entry) + "'");
    }
    for (size_t i = 2; i < fields.size(); ++i) {
      const std::string_view arg = Trim(fields[i]);
      const bool has_alpha = std::any_of(arg.begin(), arg.end(), [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) != 0;
      });
      if (has_alpha) {  // a duration: digits + us/ms/s suffix
        if (rule.kind != FaultKind::kStall) {
          return Status::InvalidArgument(
              "duration arg is only valid for stall: '" + std::string(entry) +
              "'");
        }
        auto duration = ParseDuration(arg);
        if (!duration.ok()) return duration.status();
        rule.stall = *duration;
        continue;
      }
      auto probability = ParseDouble(arg);
      if (!probability.ok() || *probability <= 0.0 || *probability > 1.0) {
        return Status::InvalidArgument("fault probability must be in (0,1]: '" +
                                       std::string(entry) + "'");
      }
      rule.probability = *probability;
    }
    injector->by_point_[static_cast<int>(rule.point)].push_back(
        static_cast<uint32_t>(injector->rules_.size()));
    injector->rules_.push_back(rule);
  }
  return injector;
}

bool FaultInjector::Fires(size_t rule_index, uint64_t draw) const {
  const FaultRule& rule = rules_[rule_index];
  if (rule.probability >= 1.0) return true;
  // One SplitMix64 step over (seed, point, rule, draw): deterministic and
  // uncorrelated across points and rules.
  SplitMix64 mix(seed_ ^
                 (0x9E3779B97f4A7C15ULL *
                  (static_cast<uint64_t>(rule_index) * 131 +
                   static_cast<uint64_t>(rule.point) + 1)) ^
                 (draw * 0x2545F4914F6CDD1DULL));
  const uint64_t threshold =
      static_cast<uint64_t>(rule.probability * 18446744073709551615.0);
  return mix.Next() < threshold;
}

Status FaultInjector::Inject(FaultPoint point, int32_t shard) {
  const int p = static_cast<int>(point);
  if (by_point_[p].empty()) return Status::OK();
  const uint64_t draw = draws_[p].fetch_add(1, std::memory_order_relaxed);
  for (uint32_t rule_index : by_point_[p]) {
    const FaultRule& rule = rules_[rule_index];
    if (rule.shard >= 0 && rule.shard != shard) continue;
    if (!Fires(rule_index, draw)) continue;
    fired_[p].fetch_add(1, std::memory_order_relaxed);
    FireCounter(rule)->Add(1);
    switch (rule.kind) {
      case FaultKind::kStall:
        std::this_thread::sleep_for(rule.stall);
        continue;  // a stall perturbs timing, later rules still apply
      case FaultKind::kFail:
        return Status::Unavailable(
            "injected fault at " + std::string(FaultPointName(point)) +
            (shard >= 0 ? " (shard " + std::to_string(shard) + ")" : ""));
      case FaultKind::kThrow:
        throw FaultInjectedError("injected fault at " +
                                 std::string(FaultPointName(point)));
    }
  }
  return Status::OK();
}

uint64_t FaultInjector::total_fired() const {
  uint64_t total = 0;
  for (const auto& counter : fired_) {
    total += counter.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

/// Installs the env-spec injector during static initialization, before
/// main() spawns any query thread. A malformed spec is reported once on
/// stderr and ignored (the process must stay usable). The scope object is
/// intentionally leaked so the injector outlives every static destructor.
struct EnvFaultInit {
  EnvFaultInit() {
    const char* spec = std::getenv("USTDB_FAULT_SPEC");
    if (spec == nullptr || *spec == '\0') return;
    uint64_t seed = 0x5EEDULL;
    if (const char* seed_env = std::getenv("USTDB_FAULT_SEED")) {
      auto parsed = ParseU64(seed_env);
      if (parsed.ok()) seed = *parsed;
    }
    auto injector = FaultInjector::Parse(spec, seed);
    if (!injector.ok()) {
      std::fprintf(stderr, "ustdb: ignoring USTDB_FAULT_SPEC: %s\n",
                   injector.status().ToString().c_str());
      return;
    }
    new ScopedFaultInjection(std::move(injector).ValueOrDie());  // leaked
  }
};

EnvFaultInit g_env_fault_init;

}  // namespace

}  // namespace util
}  // namespace ustdb
