// Copyright 2026 the ustdb authors.
//
// Deterministic fault injection for resilience testing. A FaultInjector is
// parsed from a spec string (env `USTDB_FAULT_SPEC`, seeded by
// `USTDB_FAULT_SEED`) and consulted at seven fixed points of the query
// pipeline: queue admission, dispatch, engine build, kernel dispatch,
// cache admission, scatter/gather merge, and ingest. Each consultation
// either does
// nothing, sleeps (`stall`), returns kUnavailable (`fail`), or throws a
// FaultInjectedError (`throw`) — the decision is a pure function of
// (seed, point, rule, per-point draw counter), so a fixed spec + seed
// replays the same fault sequence for a single-threaded call order and the
// same fault *set* for any interleaving.
//
// Zero-overhead contract: when no spec is installed, every injection point
// is one relaxed atomic load plus a predictable branch — results are
// bit-identical to a build without the points.
//
// Spec grammar (entries separated by ';', fields by ':'):
//
//   spec     := entry (';' entry)*
//   entry    := site ':' action (':' arg)*
//   site     := 'queue_admission' | 'dispatch' | 'engine_build'
//             | 'kernel_dispatch' | 'cache_admission' | 'merge'
//             | 'ingest'
//             | 'shard' N                (= dispatch, shard N only)
//   action   := 'fail' | 'throw' | 'stall'
//   arg      := probability in (0, 1]    (default 1.0)
//             | duration '10ms' '250us' '1s'  (stall only; default 10ms)
//
// Examples: `engine_build:throw:0.01;shard2:stall:50ms`,
//           `dispatch:fail:0.05;merge:stall:1ms:0.2`.

#ifndef USTDB_UTIL_FAULT_INJECTOR_H_
#define USTDB_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace ustdb {
namespace util {

/// The fixed injection points of the query pipeline. Values index the
/// injector's per-point counters; keep kNumFaultPoints in sync.
enum class FaultPoint : int {
  kQueueAdmission = 0,  ///< QueryService::Submit, before enqueueing
  kDispatch = 1,        ///< dispatcher thread, before running a task
  kEngineBuild = 2,     ///< executor, before constructing engines
  kKernelDispatch = 3,  ///< evaluation loop, per object chunk
  kCacheAdmission = 4,  ///< EngineCache::Put*, before admitting an entry
  kMerge = 5,           ///< scatter/gather merge of sub-results
  kIngest = 6,          ///< QueryService::AppendObservation, before applying
};
inline constexpr int kNumFaultPoints = 7;

/// Spec name of a point ("queue_admission", ...).
std::string_view FaultPointName(FaultPoint point);

/// What a firing rule does at its point.
enum class FaultKind : int {
  kFail = 0,   ///< Inject() returns Status::Unavailable
  kThrow = 1,  ///< Inject() throws FaultInjectedError
  kStall = 2,  ///< Inject() sleeps for the rule's duration, then continues
};

/// Exception raised by `throw` rules. Caught at the executor/service
/// boundaries and converted to kUnavailable, like any transient failure.
struct FaultInjectedError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One parsed spec entry.
struct FaultRule {
  FaultPoint point = FaultPoint::kDispatch;
  int32_t shard = -1;  ///< -1 = any shard; >= 0 restricts dispatch faults
  FaultKind kind = FaultKind::kFail;
  double probability = 1.0;
  std::chrono::microseconds stall{10000};
};

/// \brief Seeded, deterministic fault source. Thread-safe: Inject() may be
/// called concurrently from any thread; all state is atomic.
class FaultInjector {
 public:
  /// The installed injector, or nullptr when fault injection is off. One
  /// relaxed atomic load — this is the entire cost of an inactive point.
  static FaultInjector* Active() {
    return active_.load(std::memory_order_acquire);
  }

  /// Parses a spec string. Returns InvalidArgument with the offending
  /// entry on malformed input.
  static Result<std::unique_ptr<FaultInjector>> Parse(std::string_view spec,
                                                      uint64_t seed);

  /// Consults every rule matching (point, shard): stalls sleep and
  /// continue, the first firing fail returns kUnavailable, the first
  /// firing throw raises FaultInjectedError. OK when nothing fires.
  Status Inject(FaultPoint point, int32_t shard = -1);

  /// Number of rule firings recorded at `point` (stalls included).
  uint64_t fired(FaultPoint point) const {
    return fired_[static_cast<int>(point)].load(std::memory_order_relaxed);
  }
  /// Total firings across all points.
  uint64_t total_fired() const;

  const std::vector<FaultRule>& rules() const { return rules_; }
  uint64_t seed() const { return seed_; }

 private:
  friend class ScopedFaultInjection;
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  /// Pure decision: does `rule_index` fire for draw number `draw`?
  bool Fires(size_t rule_index, uint64_t draw) const;

  static std::atomic<FaultInjector*> active_;

  uint64_t seed_ = 0;
  std::vector<FaultRule> rules_;
  /// Rule indices per point, in spec order.
  std::array<std::vector<uint32_t>, kNumFaultPoints> by_point_;
  mutable std::array<std::atomic<uint64_t>, kNumFaultPoints> draws_{};
  mutable std::array<std::atomic<uint64_t>, kNumFaultPoints> fired_{};
};

/// \brief RAII test hook: installs an injector (or nullptr to force-off)
/// for the scope's lifetime and restores the previous one — typically the
/// env-spec injector or none — on destruction. Install only while no
/// queries are in flight; points sample Active() independently.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(std::unique_ptr<FaultInjector> injector)
      : owned_(std::move(injector)),
        previous_(FaultInjector::active_.exchange(
            owned_.get(), std::memory_order_acq_rel)) {}
  ~ScopedFaultInjection() {
    FaultInjector::active_.store(previous_, std::memory_order_release);
  }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector* get() const { return owned_.get(); }

 private:
  std::unique_ptr<FaultInjector> owned_;
  FaultInjector* previous_;
};

}  // namespace util
}  // namespace ustdb

#endif  // USTDB_UTIL_FAULT_INJECTOR_H_
