// Copyright 2026 the ustdb authors.
//
// Deterministic pseudo-random number generation. We intentionally avoid
// std::mt19937 + std::uniform_*_distribution on experiment paths because
// their outputs are not guaranteed to be identical across standard library
// implementations; every number an experiment consumes comes from the
// generators below so that datasets and Monte-Carlo runs are reproducible
// bit-for-bit from a 64-bit seed.

#ifndef USTDB_UTIL_RNG_H_
#define USTDB_UTIL_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ustdb {
namespace util {

/// \brief SplitMix64 — used to seed Xoshiro and for cheap hashing.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97f4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Xoshiro256** — the main generator for dataset synthesis and
/// Monte-Carlo sampling. Fast, high quality, tiny state.
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", ACM TOMS 2021.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0xDB5EEDULL);

  /// Next 64 uniformly distributed bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// \param bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. \param hi must be >= lo.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double NextGaussian();

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Draws `k` distinct values from [0, n) (k <= n), ascending order.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Splits off an independent generator (for per-object streams).
  Rng Split();

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace util
}  // namespace ustdb

#endif  // USTDB_UTIL_RNG_H_
