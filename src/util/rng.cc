#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ustdb {
namespace util {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(hi >= lo);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  // Box-Muller; draw until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected, produces a set; sort at the end.
  std::vector<uint32_t> out;
  out.reserve(k);
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(NextBounded(j + 1));
    if (std::find(out.begin(), out.end(), t) != out.end()) {
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Rng Rng::Split() { return Rng(NextU64() ^ 0xA02466FFB5D7C2EDULL); }

}  // namespace util
}  // namespace ustdb
