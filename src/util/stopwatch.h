// Copyright 2026 the ustdb authors.
//
// Wall-clock stopwatch used by the benchmark harness and the examples.

#ifndef USTDB_UTIL_STOPWATCH_H_
#define USTDB_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ustdb {
namespace util {

/// \brief Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction / Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace ustdb

#endif  // USTDB_UTIL_STOPWATCH_H_
