// Copyright 2026 the ustdb authors.
//
// RocksDB-style status object used for all fallible operations in ustdb.
// Query hot paths operate on pre-validated inputs and are Status-free; every
// construction / parsing / IO entry point returns a Status (or a
// util::Result<T>, see result.h) instead of throwing.

#ifndef USTDB_UTIL_STATUS_H_
#define USTDB_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ustdb {
namespace util {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed a malformed value
  kOutOfRange = 2,        ///< an index or time is outside the domain
  kNotFound = 3,          ///< a referenced entity does not exist
  kAlreadyExists = 4,     ///< unique key violated
  kFailedPrecondition = 5,///< object not in the required state
  kInconsistent = 6,      ///< data violates a model invariant (e.g. row sums)
  kIOError = 7,           ///< filesystem / parse failure
  kUnimplemented = 8,     ///< feature intentionally not available
  kInternal = 9,          ///< invariant broken inside ustdb itself
  kCancelled = 10,        ///< caller revoked the request before completion
  kDeadlineExceeded = 11, ///< the request's deadline passed before completion
  kUnavailable = 12,      ///< transient refusal (queue full, shutting down)
  kPartial = 13,          ///< scatter-gather answered from a subset of shards
};

/// \brief Human-readable name of a StatusCode ("InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus an optional message.
///
/// Statuses are cheap to copy in the OK case (no allocation). Use the
/// factory functions (Status::OK(), Status::InvalidArgument(...)) rather
/// than the constructor.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// \name Factory functions
  /// \{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Partial(std::string msg) {
    return Status(StatusCode::kPartial, std::move(msg));
  }
  /// \}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Message attached at construction; empty for OK.
  const std::string& message() const { return message_; }

  /// "OK" or "CodeName: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace util
}  // namespace ustdb

/// Propagates a non-OK Status to the caller (RocksDB idiom).
#define USTDB_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::ustdb::util::Status _st = (expr);            \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // USTDB_UTIL_STATUS_H_
